"""Declarative foreign-schema ingestion.

Real hospital dumps never look like :mod:`repro.emr`'s entity lists —
they arrive as a handful of tables in a site-specific schema, tied
together by universal keys (a patient number ``hn``, an admission number
``an``, a visit number ``vn``). A :class:`SchemaMapping` declares, as
plain JSON, how those tables project onto the four canonical roles the
detection pipeline needs:

* ``employees`` — the EMR users (key, surname, department, address,
  geocode);
* ``patients``  — the records being accessed (universal patient key,
  surname, address, geocode, optional link back to an employee);
* ``visits``    — optional: resolves visit/admission keys to patients,
  for access logs recorded against a visit rather than a patient;
* ``accesses``  — the access log itself (employee key, day, time of day,
  and at least one of patient/visit/admission key per row).

Each canonical field names a foreign column plus an optional per-column
transform from :data:`TRANSFORMS` (``"hhmmss_to_seconds"``,
``"iso_date_to_day"``, …). :class:`MappedSource` streams the foreign
rows through the mapping, types every access with the real rule engine
(:mod:`repro.emr.rules` via
:class:`~repro.emr.engine.AlertDetectionEngine`), and journals the
resulting days into the logstore so any ingested run replays exactly
(see :class:`~repro.ingest.source.LogReplaySource`).
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from datetime import date
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.emr.engine import AlertDetectionEngine
from repro.emr.events import AccessEvent
from repro.emr.geo import Household
from repro.emr.population import Employee, Patient, Population
from repro.errors import DataError
from repro.ingest.source import StoreBackedSource
from repro.logstore.io import write_alerts_csv, write_alerts_jsonl
from repro.logstore.store import AlertLogStore, AlertRecord


def _hhmmss_to_seconds(value: Any) -> float:
    parts = str(value).split(":")
    if len(parts) != 3:
        raise ValueError(f"expected HH:MM:SS, got {value!r}")
    hours, minutes, seconds = (float(part) for part in parts)
    return hours * 3600.0 + minutes * 60.0 + seconds


def _iso_date_to_day(value: Any) -> int:
    return date.fromisoformat(str(value).strip()).toordinal()


#: Named per-column transforms a :class:`ColumnSpec` may reference.
TRANSFORMS: dict[str, Callable[[Any], Any]] = {
    "identity": lambda value: value,
    "str": str,
    "strip": lambda value: str(value).strip(),
    "upper": lambda value: str(value).strip().upper(),
    "lower": lambda value: str(value).strip().lower(),
    "int": lambda value: int(float(value)),
    "float": float,
    "hhmmss_to_seconds": _hhmmss_to_seconds,
    "iso_date_to_day": _iso_date_to_day,
}

#: Canonical fields per role; ``True`` marks the field required.
_ROLE_FIELDS: dict[str, dict[str, bool]] = {
    "employees": {
        "employee_id": True, "surname": True, "department": True,
        "address": True, "geo_x": True, "geo_y": True,
    },
    "patients": {
        "patient_id": True, "surname": True, "address": True,
        "geo_x": True, "geo_y": True, "employee_id": False,
    },
    "visits": {
        "patient_id": True, "visit_id": False, "admission_id": False,
    },
    "accesses": {
        "employee_id": True, "day": True, "time_of_day": True,
        "patient_id": False, "visit_id": False, "admission_id": False,
    },
}


@dataclass(frozen=True)
class ColumnSpec:
    """One canonical field: a foreign column plus an optional transform."""

    column: str
    transform: str = "identity"
    default: int | float | str | None = None

    def __post_init__(self) -> None:
        if not self.column or not isinstance(self.column, str):
            raise DataError("column name must be a non-empty string")
        if self.transform not in TRANSFORMS:
            raise DataError(
                f"unknown transform {self.transform!r}; available: "
                f"{sorted(TRANSFORMS)}"
            )

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"column": self.column}
        if self.transform != "identity":
            payload["transform"] = self.transform
        if self.default is not None:
            payload["default"] = self.default
        return payload

    @classmethod
    def from_dict(cls, payload: Any) -> "ColumnSpec":
        if isinstance(payload, str):
            return cls(column=payload)
        if not isinstance(payload, Mapping):
            raise DataError(
                f"a column spec must be a string or an object, got {payload!r}"
            )
        unknown = set(payload) - {"column", "transform", "default"}
        if unknown:
            raise DataError(f"unknown ColumnSpec keys: {sorted(unknown)}")
        return cls(**dict(payload))


@dataclass(frozen=True)
class TableMapping:
    """One foreign table projected onto one canonical role."""

    table: str
    columns: Mapping[str, ColumnSpec]

    def __post_init__(self) -> None:
        if not self.table or not isinstance(self.table, str):
            raise DataError("table name must be a non-empty string")
        object.__setattr__(self, "columns", dict(self.columns))

    def to_dict(self) -> dict[str, Any]:
        return {
            "table": self.table,
            "columns": {
                name: spec.to_dict() for name, spec in self.columns.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "TableMapping":
        if not isinstance(payload, Mapping):
            raise DataError(f"a table mapping must be an object, got {payload!r}")
        unknown = set(payload) - {"table", "columns"}
        if unknown:
            raise DataError(f"unknown TableMapping keys: {sorted(unknown)}")
        columns = payload.get("columns")
        if not isinstance(columns, Mapping):
            raise DataError("a table mapping needs a 'columns' object")
        return cls(
            table=payload.get("table", ""),
            columns={
                name: ColumnSpec.from_dict(spec)
                for name, spec in columns.items()
            },
        )


@dataclass(frozen=True)
class SchemaMapping:
    """A JSON-serializable foreign-schema → canonical-roles mapping.

    The universal key columns (``patient_key``/``admission_key``/
    ``visit_key``) name the foreign schema's shared identifier columns;
    key fields omitted from a role's ``columns`` are auto-filled from
    them, so a mapping only spells out what deviates.
    """

    name: str
    employees: TableMapping
    patients: TableMapping
    accesses: TableMapping
    visits: TableMapping | None = None
    patient_key: str = "hn"
    admission_key: str = "an"
    visit_key: str = "vn"

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise DataError("mapping name must be a non-empty string")
        for key_field in ("patient_key", "admission_key", "visit_key"):
            value = getattr(self, key_field)
            if not value or not isinstance(value, str):
                raise DataError(f"{key_field} must be a non-empty string")
        for role in ("employees", "patients", "accesses", "visits"):
            table = getattr(self, role)
            if table is None:
                continue
            allowed = _ROLE_FIELDS[role]
            unknown = set(table.columns) - set(allowed)
            if unknown:
                raise DataError(
                    f"{role} mapping has unknown canonical fields: "
                    f"{sorted(unknown)}; allowed: {sorted(allowed)}"
                )
            filled = self._filled_columns(role)
            missing = [
                name for name, required in allowed.items()
                if required and name not in filled
            ]
            if missing:
                raise DataError(
                    f"{role} mapping is missing required fields: {missing}"
                )

    def _filled_columns(self, role: str) -> dict[str, ColumnSpec]:
        """The role's columns with universal-key fields auto-filled."""
        table = getattr(self, role)
        columns = dict(table.columns)
        auto = {
            "patient_id": self.patient_key,
            "visit_id": self.visit_key,
            "admission_id": self.admission_key,
        }
        for name, column in auto.items():
            if name in _ROLE_FIELDS[role] and name not in columns:
                columns[name] = ColumnSpec(column=column)
        return columns

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "patient_key": self.patient_key,
            "admission_key": self.admission_key,
            "visit_key": self.visit_key,
            "employees": self.employees.to_dict(),
            "patients": self.patients.to_dict(),
            "accesses": self.accesses.to_dict(),
        }
        if self.visits is not None:
            payload["visits"] = self.visits.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SchemaMapping":
        if not isinstance(payload, Mapping):
            raise DataError("a SchemaMapping document must be an object")
        allowed = {
            "name", "patient_key", "admission_key", "visit_key",
            "employees", "patients", "accesses", "visits",
        }
        unknown = set(payload) - allowed
        if unknown:
            raise DataError(f"unknown SchemaMapping keys: {sorted(unknown)}")
        for role in ("employees", "patients", "accesses"):
            if role not in payload:
                raise DataError(f"SchemaMapping is missing the {role!r} table")
        visits = payload.get("visits")
        return cls(
            name=payload.get("name", ""),
            patient_key=payload.get("patient_key", "hn"),
            admission_key=payload.get("admission_key", "an"),
            visit_key=payload.get("visit_key", "vn"),
            employees=TableMapping.from_dict(payload["employees"]),
            patients=TableMapping.from_dict(payload["patients"]),
            accesses=TableMapping.from_dict(payload["accesses"]),
            visits=TableMapping.from_dict(visits) if visits is not None else None,
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SchemaMapping":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise DataError("a SchemaMapping JSON document must be an object")
        return cls.from_dict(payload)


class _RowMapper:
    """Compiled per-role row mapper: field → (column, transform, default)."""

    def __init__(self, mapping: SchemaMapping, role: str) -> None:
        self.role = role
        self.table = getattr(mapping, role).table
        required = _ROLE_FIELDS[role]
        self._fields = [
            (name, spec.column, TRANSFORMS[spec.transform], spec.default,
             required[name])
            for name, spec in mapping._filled_columns(role).items()
        ]

    def __call__(self, row: Mapping[str, Any], index: int) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for name, column, transform, default, required in self._fields:
            raw = row.get(column)
            if raw is None or raw == "":
                if default is None and required:
                    raise DataError(
                        f"{self.table} row {index}: required column "
                        f"{column!r} (field {name!r}) is empty"
                    )
                out[name] = default
                continue
            try:
                out[name] = transform(raw)
            except (ValueError, TypeError) as error:
                raise DataError(
                    f"{self.table} row {index}: cannot transform column "
                    f"{column!r} value {raw!r} for field {name!r}: {error}"
                ) from error
        return out


def _read_table(path: Path) -> list[dict[str, Any]]:
    if path.suffix == ".csv":
        with open(path, newline="") as handle:
            return list(csv.DictReader(handle))
    with open(path) as handle:
        rows = []
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as error:
                raise DataError(f"{path}:{line_number}: invalid JSON") from error
            if not isinstance(row, dict):
                raise DataError(f"{path}:{line_number}: expected an object")
            rows.append(row)
        return rows


def read_dump(path: str | Path, tables: Sequence[str]) -> dict[str, list[dict[str, Any]]]:
    """Load the named foreign tables from a dump directory.

    Each table is a ``<name>.csv`` (with header) or a ``<name>.ndjson``/
    ``<name>.jsonl`` file of row objects.
    """
    root = Path(path)
    if not root.is_dir():
        raise DataError(f"dump directory not found: {root}")
    out: dict[str, list[dict[str, Any]]] = {}
    for table in tables:
        for suffix in (".csv", ".ndjson", ".jsonl"):
            candidate = root / f"{table}{suffix}"
            if candidate.is_file():
                out[table] = _read_table(candidate)
                break
        else:
            raise DataError(
                f"table {table!r} not found in {root} "
                "(looked for .csv/.ndjson/.jsonl)"
            )
    return out


@dataclass
class _MappedWorld:
    """The canonical entities a mapping pass reconstructs."""

    population: Population
    employee_ids: dict[str, int]
    patient_ids: dict[str, int]
    by_visit: dict[str, int]
    by_admission: dict[str, int]


class MappedSource(StoreBackedSource):
    """Stream a foreign-schema dump through a :class:`SchemaMapping`.

    The pipeline is the honest one end to end: mapped entity rows become
    a :class:`~repro.emr.population.Population`, every access row becomes
    an :class:`~repro.emr.events.AccessEvent`, and alert types come from
    the real rule engine — nothing is labeled by the mapping itself.
    Pair classifications are memoized, which is what sustains the
    ``bench_ingest`` rows/s floor at full scale.
    """

    def __init__(
        self,
        mapping: SchemaMapping,
        tables: Mapping[str, Sequence[Mapping[str, Any]]],
        path: str | None = None,
    ) -> None:
        self._mapping = mapping
        self._tables = tables
        self._path = path
        self._journal_path: str | None = None
        self._world: _MappedWorld | None = None
        self._store: AlertLogStore | None = None
        self._n_access_rows = 0

    @classmethod
    def open(
        cls, path: str | Path, mapping: SchemaMapping | None = None
    ) -> "MappedSource":
        """Open a dump directory (its ``mapping.json`` unless given one)."""
        root = Path(path)
        if mapping is None:
            mapping_file = root / "mapping.json"
            if not mapping_file.is_file():
                raise DataError(f"no mapping.json in {root} and none given")
            mapping = SchemaMapping.from_json(
                mapping_file.read_text(encoding="utf-8")
            )
        tables = [mapping.employees.table, mapping.patients.table,
                  mapping.accesses.table]
        if mapping.visits is not None:
            tables.append(mapping.visits.table)
        return cls(mapping, read_dump(root, tables), path=str(root))

    @property
    def name(self) -> str:
        return "mapped"

    @property
    def mapping(self) -> SchemaMapping:
        return self._mapping

    @property
    def n_access_rows(self) -> int:
        """Foreign access rows mapped (after :meth:`build_store`)."""
        return self._n_access_rows

    # ------------------------------------------------------------------
    # Mapping passes
    # ------------------------------------------------------------------

    def _rows(self, role: str) -> Sequence[Mapping[str, Any]]:
        table = getattr(self._mapping, role).table
        try:
            return self._tables[table]
        except KeyError:
            raise DataError(
                f"mapping role {role!r} references table {table!r}, which "
                f"the dump does not contain (tables: {sorted(self._tables)})"
            ) from None

    def world(self) -> _MappedWorld:
        """Map the entity tables into a canonical population (memoized)."""
        if self._world is not None:
            return self._world

        households: dict[str, Household] = {}
        household_list: list[Household] = []

        def household_for(address: str, x: float, y: float) -> Household:
            key = str(address).strip()
            if not key:
                raise DataError("an entity row has an empty address")
            found = households.get(key)
            if found is None:
                found = Household(
                    household_id=len(household_list), address=key, x=x, y=y
                )
                households[key] = found
                household_list.append(found)
            return found

        mapper = _RowMapper(self._mapping, "employees")
        departments: dict[str, int] = {}
        employees: list[Employee] = []
        employee_ids: dict[str, int] = {}
        for index, raw in enumerate(self._rows("employees")):
            row = mapper(raw, index)
            key = str(row["employee_id"])
            if key in employee_ids:
                raise DataError(
                    f"{mapper.table} row {index}: duplicate employee key {key!r}"
                )
            department = str(row["department"])
            department_id = departments.setdefault(department, len(departments))
            x, y = float(row["geo_x"]), float(row["geo_y"])
            household = household_for(row["address"], x, y)
            employee_ids[key] = len(employees)
            employees.append(
                Employee(
                    employee_id=len(employees),
                    surname=str(row["surname"]),
                    department_id=department_id,
                    household_id=household.household_id,
                    geocode=(x, y),
                )
            )

        mapper = _RowMapper(self._mapping, "patients")
        patients: list[Patient] = []
        patient_ids: dict[str, int] = {}
        for index, raw in enumerate(self._rows("patients")):
            row = mapper(raw, index)
            key = str(row["patient_id"])
            if key in patient_ids:
                raise DataError(
                    f"{mapper.table} row {index}: duplicate patient key {key!r}"
                )
            linked = row.get("employee_id")
            linked_id: int | None = None
            if linked is not None:
                linked_id = employee_ids.get(str(linked))
                if linked_id is None:
                    raise DataError(
                        f"{mapper.table} row {index}: patient links to "
                        f"unknown employee {linked!r}"
                    )
            x, y = float(row["geo_x"]), float(row["geo_y"])
            household = household_for(row["address"], x, y)
            patient_ids[key] = len(patients)
            patients.append(
                Patient(
                    patient_id=len(patients),
                    surname=str(row["surname"]),
                    household_id=household.household_id,
                    geocode=(x, y),
                    employee_id=linked_id,
                )
            )

        by_visit: dict[str, int] = {}
        by_admission: dict[str, int] = {}
        if self._mapping.visits is not None:
            mapper = _RowMapper(self._mapping, "visits")
            for index, raw in enumerate(self._rows("visits")):
                row = mapper(raw, index)
                patient = patient_ids.get(str(row["patient_id"]))
                if patient is None:
                    raise DataError(
                        f"{mapper.table} row {index}: visit references "
                        f"unknown patient {row['patient_id']!r}"
                    )
                for field_name, index_map in (
                    ("visit_id", by_visit), ("admission_id", by_admission),
                ):
                    value = row.get(field_name)
                    if value is not None:
                        index_map[str(value)] = patient

        population = Population(
            households=household_list,
            employees=employees,
            patients=patients,
            departments=tuple(departments),
            candidate_pairs=[],
            general_patient_ids=[],
        )
        self._world = _MappedWorld(
            population=population,
            employee_ids=employee_ids,
            patient_ids=patient_ids,
            by_visit=by_visit,
            by_admission=by_admission,
        )
        return self._world

    def _resolve_patient(
        self, world: _MappedWorld, row: Mapping[str, Any],
        table: str, index: int,
    ) -> int:
        direct = row.get("patient_id")
        if direct is not None:
            patient = world.patient_ids.get(str(direct))
            if patient is None:
                raise DataError(
                    f"{table} row {index}: unknown patient key {direct!r}"
                )
            return patient
        for field_name, index_map in (
            ("visit_id", world.by_visit), ("admission_id", world.by_admission),
        ):
            value = row.get(field_name)
            if value is not None:
                patient = index_map.get(str(value))
                if patient is None:
                    raise DataError(
                        f"{table} row {index}: unknown {field_name} {value!r}"
                    )
                return patient
        raise DataError(
            f"{table} row {index}: no patient/visit/admission key present"
        )

    def map_accesses(self) -> Iterator[AccessEvent]:
        """Map every foreign access row to a canonical event (day-rebased).

        Days are rebased so the dump's earliest day is day 0, which keeps
        the mapped store's day axis aligned with every other source
        regardless of the foreign schema's date representation.
        """
        world = self.world()
        mapper = _RowMapper(self._mapping, "accesses")
        rows = self._rows("accesses")
        mapped: list[dict[str, Any]] = []
        min_day: int | None = None
        for index, raw in enumerate(rows):
            row = mapper(raw, index)
            day = row["day"]
            if not isinstance(day, (int, float)):
                raise DataError(
                    f"{mapper.table} row {index}: day must map to a number "
                    f"(use the 'int' or 'iso_date_to_day' transform), got "
                    f"{day!r}"
                )
            day = int(day)
            row["day"] = day
            if min_day is None or day < min_day:
                min_day = day
            mapped.append(row)
        for index, row in enumerate(mapped):
            employee = world.employee_ids.get(str(row["employee_id"]))
            if employee is None:
                raise DataError(
                    f"{mapper.table} row {index}: unknown employee key "
                    f"{row['employee_id']!r}"
                )
            patient = self._resolve_patient(world, row, mapper.table, index)
            yield AccessEvent(
                day=row["day"] - (min_day or 0),
                time_of_day=float(row["time_of_day"]),
                employee_id=employee,
                patient_id=patient,
            )

    def build_store(self) -> AlertLogStore:
        """Map, classify and journal the whole dump (memoized).

        Events are classified in chronological order with a per-pair memo
        over the rule engine, so alert ids — and therefore any decision
        stream keyed on them — are deterministic for a given dump.
        """
        if self._store is not None:
            return self._store
        events = sorted(self.map_accesses())
        self._n_access_rows = len(events)
        engine = AlertDetectionEngine(self.world().population)
        memo: dict[tuple[int, int], int] = {}
        store = AlertLogStore()
        for event in events:
            pair = (event.employee_id, event.patient_id)
            type_id = memo.get(pair)
            if type_id is None:
                type_id, _rules = engine.classify_pair(*pair)
                memo[pair] = type_id
            if type_id:
                store.add(
                    AlertRecord(
                        day=event.day,
                        time_of_day=event.time_of_day,
                        type_id=type_id,
                        employee_id=event.employee_id,
                        patient_id=event.patient_id,
                    )
                )
        self._store = store
        return store

    # ------------------------------------------------------------------
    # Replay contract
    # ------------------------------------------------------------------

    def journal(self, path: str | Path) -> None:
        """Journal the ingested alert log (suffix selects CSV or JSONL).

        The journal reloads through
        :class:`~repro.ingest.source.LogReplaySource` with identical
        records and ids — the replay half of the ingest contract.
        """
        path = Path(path)
        store = self.build_store()
        if path.suffix == ".csv":
            write_alerts_csv(store, path)
        elif path.suffix in (".jsonl", ".ndjson"):
            write_alerts_jsonl(store, path)
        else:
            raise DataError(
                f"unsupported journal suffix {path.suffix!r}; "
                "expected .csv, .jsonl or .ndjson"
            )
        self._journal_path = str(path)

    def replay(self) -> dict[str, Any]:
        if self._journal_path is not None:
            return {"source": "log", "path": self._journal_path}
        if self._path is not None:
            return {"source": "mapped", "path": self._path}
        raise DataError(
            "an in-memory MappedSource is only replayable after .journal()"
        )
