"""``SimulatorSource``: the calibrated EMR simulator as an alert source.

This adapter owns the canonical construction order the repo has always
used — one ``np.random.default_rng(seed)`` threaded first through
population synthesis and then through the access simulator — so stores
built here are bit-identical to pre-refactor seeds.
:func:`repro.experiments.dataset.build_dataset` delegates to it; nothing
else constructs the simulator pipeline directly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.emr.population import PopulationConfig, build_population
from repro.emr.simulator import AccessLogSimulator, SimulatedDay, SimulatorConfig
from repro.errors import DataError
from repro.experiments.config import PAPER_DAYS, paper_calibration
from repro.ingest.source import StoreBackedSource
from repro.logstore.store import AlertLogStore
from repro.stats.diurnal import named_profile

#: Default routine-access volume per day. Scaled down from the paper's
#: ~192k/day (10.75M / 56); the game only consumes the calibrated alert
#: stream, so this knob trades simulation time for access-log realism.
DEFAULT_NORMAL_DAILY_MEAN = 4000.0


@dataclass(frozen=True)
class SimulatorSource(StoreBackedSource):
    """The existing ``emr/`` pipeline behind the source protocol.

    Replayable from its seed: two instances with equal parameters
    simulate bit-identical days and stores.
    """

    seed: int = 7
    n_days: int = PAPER_DAYS
    normal_daily_mean: float = DEFAULT_NORMAL_DAILY_MEAN
    diurnal: str = "hospital"
    population_config: PopulationConfig | None = None

    def __post_init__(self) -> None:
        if self.n_days <= 0:
            raise DataError(f"n_days must be positive, got {self.n_days}")
        if self.normal_daily_mean <= 0:
            raise DataError(
                "normal_daily_mean must be positive, got "
                f"{self.normal_daily_mean}"
            )

    @property
    def name(self) -> str:
        return "simulator"

    def simulate_days(self) -> tuple[SimulatedDay, ...]:
        """Run the full honest pipeline: population, traffic, detection.

        The RNG threading below is the repo's original contract — the
        same generator flows through :func:`build_population` and then
        :class:`AccessLogSimulator` — and must not be reordered: every
        historical seed's dataset depends on it.
        """
        rng = np.random.default_rng(self.seed)
        population = build_population(self.population_config, rng=rng)
        simulator = AccessLogSimulator(
            population,
            SimulatorConfig(
                calibration=paper_calibration(),
                normal_daily_mean=self.normal_daily_mean,
                profile=named_profile(self.diurnal),
            ),
            rng=rng,
        )
        return tuple(simulator.simulate(self.n_days))

    def build_store(self) -> AlertLogStore:
        store = AlertLogStore()
        for day in self.simulate_days():
            for alert in day.alerts:
                store.add_detected(alert)
        return store

    def replay(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "source": "simulator",
            "seed": self.seed,
            "n_days": self.n_days,
            "normal_daily_mean": self.normal_daily_mean,
            "diurnal": self.diurnal,
        }
        if self.population_config is not None:
            payload["population_config"] = dataclasses.asdict(
                self.population_config
            )
        return payload
