"""High-volume foreign-schema dump generator.

Emits a synthetic hospital information system dump in a schema that is
deliberately *not* the repo's canonical one — universal-key tables of
the kind real EMR exports use (``staff``/``person``/``opd_visit``/
``access_log``, patients keyed by ``hn``, visits by ``vn``, admissions
by ``an``, access rows carrying only the visit key plus an ISO date and
an ``HH:MM:SS`` time) — so the :class:`~repro.ingest.mapping.SchemaMapping`
pipeline is exercised for real: key joins, per-column transforms, day
rebasing, rule-engine typing. :func:`foreign_mapping` returns the
mapping that ingests it.

The generator reuses :func:`repro.emr.population.build_population`, so
every engineered relationship class behind the paper's Table 1 is
present in the dump and typed by the real rule engine on the way back
in. Volumes are knob-controlled; ``python -m repro.ingest.generate``
writes a dump directory (tables + ``mapping.json``) from the command
line.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from dataclasses import dataclass
from datetime import date, timedelta
from pathlib import Path
from typing import Any

import numpy as np

from repro.emr.population import Population, PopulationConfig, build_population
from repro.errors import DataError
from repro.ingest.mapping import ColumnSpec, SchemaMapping, TableMapping

#: Arbitrary calendar anchor for ``access_date``; ingestion rebases days,
#: so its value never reaches the canonical store.
EPOCH = date(2024, 1, 5)

#: Foreign table names, in dump order.
FOREIGN_TABLES = ("staff", "person", "opd_visit", "access_log")


def foreign_mapping() -> SchemaMapping:
    """The :class:`SchemaMapping` that ingests this generator's schema."""
    return SchemaMapping(
        name="demo-his",
        patient_key="hn",
        admission_key="an",
        visit_key="vn",
        employees=TableMapping(
            table="staff",
            columns={
                "employee_id": ColumnSpec(column="staff_code", transform="strip"),
                "surname": ColumnSpec(column="last_name", transform="strip"),
                "department": ColumnSpec(column="dept_name", transform="strip"),
                "address": ColumnSpec(column="home_addr", transform="strip"),
                "geo_x": ColumnSpec(column="geo_lat", transform="float"),
                "geo_y": ColumnSpec(column="geo_lon", transform="float"),
            },
        ),
        patients=TableMapping(
            table="person",
            columns={
                "surname": ColumnSpec(column="last_name", transform="strip"),
                "address": ColumnSpec(column="home_addr", transform="strip"),
                "geo_x": ColumnSpec(column="geo_lat", transform="float"),
                "geo_y": ColumnSpec(column="geo_lon", transform="float"),
                "employee_id": ColumnSpec(column="staff_code", transform="strip"),
            },
        ),
        # Key columns (hn/vn/an) are auto-filled from the universal keys.
        visits=TableMapping(table="opd_visit", columns={}),
        accesses=TableMapping(
            table="access_log",
            columns={
                "employee_id": ColumnSpec(column="staff_code", transform="strip"),
                "day": ColumnSpec(column="access_date", transform="iso_date_to_day"),
                "time_of_day": ColumnSpec(
                    column="access_time", transform="hhmmss_to_seconds"
                ),
            },
        ),
    )


def small_population() -> PopulationConfig:
    """A scaled-down population for smoke tests and examples."""
    return PopulationConfig(
        n_departments=12,
        n_employees=150,
        n_family_patients=200,
        n_roommate_patients=150,
        n_neighbor_patients=200,
        n_namesake_neighbor_patients=60,
        n_namesake_far_patients=200,
        n_coworker_pairs=80,
        n_general_patients=1200,
    )


@dataclass(frozen=True)
class GeneratorConfig:
    """Volume and randomness knobs for the foreign dump."""

    seed: int = 7
    n_days: int = 8
    daily_accesses: int = 4000
    daily_suspicious: int = 60
    population: PopulationConfig | None = None

    def __post_init__(self) -> None:
        if self.n_days <= 0:
            raise DataError(f"n_days must be positive, got {self.n_days}")
        if self.daily_accesses <= 0:
            raise DataError("daily_accesses must be positive")
        if not 0 <= self.daily_suspicious <= self.daily_accesses:
            raise DataError(
                "daily_suspicious must lie in [0, daily_accesses]"
            )


def _staff_code(employee_id: int) -> str:
    return f"S{employee_id:05d}"


def _hn(patient_id: int) -> str:
    return f"HN{patient_id:07d}"


def generate_tables(
    config: GeneratorConfig | None = None,
) -> dict[str, list[dict[str, Any]]]:
    """Generate the four foreign tables in memory.

    Routine traffic is uniform employee × general-patient draws; a
    ``daily_suspicious`` slice is drawn from the population's engineered
    candidate pairs so every Table 1 relationship class appears. All
    randomness comes from one seeded generator — equal configs produce
    identical dumps.
    """
    config = config or GeneratorConfig()
    rng = np.random.default_rng(config.seed)
    population: Population = build_population(config.population, rng=rng)

    staff = [
        {
            "staff_code": _staff_code(employee.employee_id),
            "last_name": employee.surname,
            "dept_name": population.departments[employee.department_id],
            "home_addr": population.household(employee.household_id).address,
            "geo_lat": repr(employee.geocode[0]),
            "geo_lon": repr(employee.geocode[1]),
        }
        for employee in population.employees
    ]
    person = [
        {
            "hn": _hn(patient.patient_id),
            "last_name": patient.surname,
            "home_addr": population.household(patient.household_id).address,
            "geo_lat": repr(patient.geocode[0]),
            "geo_lon": repr(patient.geocode[1]),
            "staff_code": (
                "" if patient.employee_id is None
                else _staff_code(patient.employee_id)
            ),
        }
        for patient in population.patients
    ]
    # One OPD visit per patient: the access log references patients only
    # through vn, so ingestion must join through this table.
    opd_visit = [
        {
            "vn": f"V{patient.patient_id:07d}",
            "an": f"A{patient.patient_id:07d}",
            "hn": _hn(patient.patient_id),
        }
        for patient in population.patients
    ]

    candidate_pairs = np.asarray(population.candidate_pairs, dtype=np.int64)
    general = np.asarray(population.general_patient_ids, dtype=np.int64)
    n_routine = config.daily_accesses - config.daily_suspicious

    access_log: list[dict[str, Any]] = []
    for day in range(config.n_days):
        day_date = (EPOCH + timedelta(days=day)).isoformat()
        employees = rng.integers(population.n_employees, size=n_routine)
        patients = general[rng.integers(len(general), size=n_routine)]
        pairs = candidate_pairs[
            rng.integers(len(candidate_pairs), size=config.daily_suspicious)
        ]
        all_employees = np.concatenate([employees, pairs[:, 0]])
        all_patients = np.concatenate([patients, pairs[:, 1]])
        seconds = rng.integers(0, 86_400, size=config.daily_accesses)
        order = rng.permutation(config.daily_accesses)
        for index in order:
            second = int(seconds[index])
            access_log.append(
                {
                    "staff_code": _staff_code(int(all_employees[index])),
                    "vn": f"V{int(all_patients[index]):07d}",
                    "access_date": day_date,
                    "access_time": (
                        f"{second // 3600:02d}:"
                        f"{second % 3600 // 60:02d}:{second % 60:02d}"
                    ),
                }
            )

    return {
        "staff": staff,
        "person": person,
        "opd_visit": opd_visit,
        "access_log": access_log,
    }


def write_dump(
    tables: dict[str, list[dict[str, Any]]],
    path: str | Path,
    fmt: str = "csv",
    mapping: SchemaMapping | None = None,
) -> None:
    """Write tables (plus ``mapping.json``) to a dump directory."""
    if fmt not in ("csv", "ndjson"):
        raise DataError(f"unknown dump format {fmt!r}; expected csv or ndjson")
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    for name, rows in tables.items():
        if fmt == "csv":
            with open(root / f"{name}.csv", "w", newline="") as handle:
                writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
                writer.writeheader()
                writer.writerows(rows)
        else:
            with open(root / f"{name}.ndjson", "w") as handle:
                for row in rows:
                    handle.write(json.dumps(row))
                    handle.write("\n")
    (root / "mapping.json").write_text(
        (mapping or foreign_mapping()).to_json(), encoding="utf-8"
    )


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.ingest.generate``: write a foreign-schema dump."""
    parser = argparse.ArgumentParser(
        prog="repro-ingest-generate",
        description="Generate a foreign-schema hospital dump + mapping.json",
    )
    parser.add_argument("--out", required=True, help="dump directory to write")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--days", type=int, default=8)
    parser.add_argument("--daily-accesses", type=int, default=4000)
    parser.add_argument("--daily-suspicious", type=int, default=60)
    parser.add_argument("--format", choices=("csv", "ndjson"), default="csv")
    parser.add_argument(
        "--small", action="store_true",
        help="use the scaled-down smoke-test population",
    )
    args = parser.parse_args(argv)

    config = GeneratorConfig(
        seed=args.seed,
        n_days=args.days,
        daily_accesses=args.daily_accesses,
        daily_suspicious=args.daily_suspicious,
        population=small_population() if args.small else None,
    )
    tables = generate_tables(config)
    write_dump(tables, args.out, fmt=args.format)
    print(json.dumps(
        {
            "out": str(args.out),
            "format": args.format,
            "rows": {name: len(rows) for name, rows in tables.items()},
        },
        indent=2, sort_keys=True,
    ))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
