"""Pluggable alert sources and declarative foreign-schema ingestion.

The audit game consumes a typed alert stream; this package owns where
that stream comes from. :class:`AlertSource` is the protocol (iterate
typed alert days, report type counts, replay from a seed or a journaled
log); :class:`SimulatorSource` wraps the calibrated EMR simulator,
:class:`MappedSource` ingests foreign-schema hospital dumps through a
declarative :class:`SchemaMapping`, and :class:`LogReplaySource` replays
any journaled run bit-identically. Sources register by name
(``repro sources``); see ``docs/ingestion.md``.
"""

from repro.ingest.generate import (
    GeneratorConfig,
    foreign_mapping,
    generate_tables,
    small_population,
    write_dump,
)
from repro.ingest.mapping import (
    TRANSFORMS,
    ColumnSpec,
    MappedSource,
    SchemaMapping,
    TableMapping,
    read_dump,
)
from repro.ingest.registry import (
    SOURCE_DESCRIPTIONS,
    available_sources,
    get_source,
    source_from_replay,
    store_for,
)
from repro.ingest.simulator import DEFAULT_NORMAL_DAILY_MEAN, SimulatorSource
from repro.ingest.source import (
    AlertSource,
    LogReplaySource,
    SourceDay,
    StoreBackedSource,
    load_alert_store,
)

__all__ = [
    "AlertSource",
    "ColumnSpec",
    "DEFAULT_NORMAL_DAILY_MEAN",
    "GeneratorConfig",
    "LogReplaySource",
    "MappedSource",
    "SOURCE_DESCRIPTIONS",
    "SchemaMapping",
    "SimulatorSource",
    "SourceDay",
    "StoreBackedSource",
    "TRANSFORMS",
    "TableMapping",
    "available_sources",
    "foreign_mapping",
    "generate_tables",
    "get_source",
    "load_alert_store",
    "read_dump",
    "small_population",
    "source_from_replay",
    "store_for",
    "write_dump",
]
