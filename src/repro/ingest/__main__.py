"""``python -m repro.ingest`` — generate a foreign-schema demo dump.

Delegates to :func:`repro.ingest.generate.main`; see that module for the
schema and the flags.
"""

import sys

from repro.ingest.generate import main

if __name__ == "__main__":
    sys.exit(main())
