"""The ``AlertSource`` protocol: where alert streams come from.

The audit game never sees a hospital — it sees a typed alert stream.
Everything upstream of :class:`~repro.logstore.store.AlertLogStore` is
therefore pluggable: the calibrated EMR simulator
(:class:`~repro.ingest.simulator.SimulatorSource`), a previously
journaled log (:class:`LogReplaySource`), or a foreign-schema hospital
dump mapped through a declarative schema
(:class:`~repro.ingest.mapping.MappedSource`). A source must do three
things:

* iterate its days as typed alert batches (:meth:`AlertSource.iter_days`);
* report how many alerts of each type it produced
  (:meth:`AlertSource.type_counts`);
* be **replayable** — :meth:`AlertSource.replay` returns a
  JSON-serializable descriptor (a seed, or a journaled-log path) from
  which :func:`repro.ingest.registry.source_from_replay` reconstructs an
  equivalent source.

Sources are registered by name in :mod:`repro.ingest.registry`
(mirroring :mod:`repro.solvers.registry`); ``repro sources`` lists them.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Protocol, runtime_checkable

from repro.errors import DataError
from repro.logstore.io import read_alerts_csv, read_alerts_jsonl
from repro.logstore.store import AlertLogStore, AlertRecord


@dataclass(frozen=True)
class SourceDay:
    """One day of typed alerts, chronological — the unit a source yields."""

    day: int
    alerts: tuple[AlertRecord, ...]

    @property
    def n_alerts(self) -> int:
        return len(self.alerts)


@runtime_checkable
class AlertSource(Protocol):
    """Anything that can produce a typed, replayable alert stream."""

    @property
    def name(self) -> str:
        """Registry name of this source kind (``repro sources``)."""
        ...

    def build_store(self) -> AlertLogStore:
        """Materialize the full alert log this source produces."""
        ...

    def iter_days(self) -> Iterator[SourceDay]:
        """The source's days, in order, as typed alert batches."""
        ...

    def type_counts(self) -> dict[int, int]:
        """``{type_id: total alerts}`` over the whole stream."""
        ...

    def replay(self) -> dict[str, Any]:
        """A JSON descriptor from which an equivalent source rebuilds."""
        ...


class StoreBackedSource:
    """Mixin implementing the stream views on top of :meth:`build_store`.

    Concrete sources only supply ``build_store`` (and may memoize it);
    day iteration and type counts derive from the store, so every source
    agrees with the logstore — the system of record — by construction.
    """

    def build_store(self) -> AlertLogStore:  # pragma: no cover - protocol
        raise NotImplementedError

    def iter_days(self) -> Iterator[SourceDay]:
        store = self.build_store()
        for day in store.days:
            yield SourceDay(day=day, alerts=store.day_alerts(day))

    def type_counts(self) -> dict[int, int]:
        store = self.build_store()
        return {t: store.count(type_id=t) for t in store.type_ids}


def load_alert_store(path: str | Path) -> AlertLogStore:
    """Load a journaled alert log, dispatching on the file suffix.

    ``.csv`` loads via :func:`repro.logstore.io.read_alerts_csv`;
    ``.jsonl``/``.ndjson`` via
    :func:`repro.logstore.io.read_alerts_jsonl`.
    """
    path = Path(path)
    if not path.is_file():
        raise DataError(f"alert log not found: {path}")
    if path.suffix == ".csv":
        return read_alerts_csv(path)
    if path.suffix in (".jsonl", ".ndjson"):
        return read_alerts_jsonl(path)
    raise DataError(
        f"unsupported alert-log suffix {path.suffix!r} for {path}; "
        "expected .csv, .jsonl or .ndjson"
    )


@dataclass(frozen=True)
class LogReplaySource(StoreBackedSource):
    """Replay a journaled alert log — the replay half of the contract.

    Any source journaled through :func:`repro.logstore.io.write_alerts_jsonl`
    (``repro ingest --journal``, or :meth:`MappedSource.journal
    <repro.ingest.mapping.MappedSource.journal>`) reloads here with
    identical records and alert ids, so downstream decision streams are
    bit-identical to the original run.
    """

    path: str

    def __post_init__(self) -> None:
        if not self.path or not isinstance(self.path, str):
            raise DataError("LogReplaySource needs a non-empty path string")

    @property
    def name(self) -> str:
        return "log"

    def build_store(self) -> AlertLogStore:
        return load_alert_store(self.path)

    def replay(self) -> dict[str, Any]:
        return {"source": "log", "path": self.path}
