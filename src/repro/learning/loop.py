"""Deterministic multi-cycle learning loop.

Replays one day's alert stream for ``cycles`` audit cycles through a fresh
:class:`~repro.engine.stream.BatchAuditEngine` while a learning attacker
adapts between cycles: after each cycle the attacker observes the cycle's
per-type *mean* coverage and updates his belief
(:meth:`observe_cycle`). The engine's cache persists across cycles, so
repeat cycles are mostly dictionary lookups.

Everything is deterministic given the context seed — the loop runs
identically in the serial runner, in the :class:`ParallelRunner` parent
process, and behind the service — which is what lets the scenario suite
embed the resulting curves in its bit-compared deterministic payload.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError
from repro.core.game import SAGConfig
from repro.engine.stream import BatchAuditEngine
from repro.audit.policies import CycleContext
from repro.logstore.store import AlertRecord


@dataclass(frozen=True)
class LearningCurveResult:
    """Per-cycle learning diagnostics for one attacker/engine pairing.

    All curves are indexed by cycle (1-based ``cycle`` entries). The wall
    clock is deliberately absent: the payload is part of the scenario
    suite's bit-compared deterministic output.
    """

    attacker: str
    cycles: int
    regret: tuple[float, ...]
    posterior_entropy: tuple[float, ...]
    exploit_gap: tuple[float, ...]
    mean_game_value: tuple[float, ...]
    final_coverage: dict[int, float]

    def summary(self) -> dict[str, float]:
        """Cycle-averaged metrics (the ``EngineStats`` attachment)."""
        return {
            "regret": float(np.mean(self.regret)),
            "posterior_entropy": float(np.mean(self.posterior_entropy)),
            "exploit_gap": float(np.mean(self.exploit_gap)),
            "learning_cycles": self.cycles,
        }

    def to_dict(self) -> dict[str, object]:
        return {
            "attacker": self.attacker,
            "cycles": self.cycles,
            "regret": list(self.regret),
            "posterior_entropy": list(self.posterior_entropy),
            "exploit_gap": list(self.exploit_gap),
            "mean_game_value": list(self.mean_game_value),
            "final_coverage": {str(t): v for t, v in self.final_coverage.items()},
        }


def mean_coverage(
    type_ids: np.ndarray, thetas: np.ndarray
) -> dict[int, float]:
    """Per-type mean marginal coverage over one cycle's decisions."""
    coverage: dict[int, float] = {}
    ids = np.asarray(type_ids)
    values = np.asarray(thetas, dtype=float)
    for type_id in np.unique(ids):
        coverage[int(type_id)] = float(values[ids == type_id].mean())
    return coverage


def run_learning_loop(
    attacker,
    alerts: Sequence[AlertRecord],
    context: CycleContext,
    cycles: int = 10,
    signaling_enabled: bool = True,
) -> LearningCurveResult:
    """Drive ``attacker`` through ``cycles`` replays of one alert day.

    The attacker must expose ``observe_cycle(coverage, payoffs)`` (the
    learning interface of :mod:`repro.learning.attackers`). Returns the
    per-cycle metric curves plus the auditor's mean game value per cycle
    — the auditor side is untouched by the attacker's learning (the SSE
    commitment is attacker-model-free), so the game-value curve moves only
    through signal-draw and budget-path variation across replays.
    """
    if cycles < 1:
        raise ExperimentError(f"learning loop needs >= 1 cycle, got {cycles}")
    if not alerts:
        raise ExperimentError("learning loop needs a non-empty alert day")
    if not hasattr(attacker, "observe_cycle"):
        raise ExperimentError(
            f"{type(attacker).__name__} is not a learning attacker "
            "(no observe_cycle method)"
        )
    config = SAGConfig(
        payoffs=context.payoffs,
        costs=context.costs,
        budget=context.budget,
        backend=context.backend,
        signaling_enabled=signaling_enabled,
        budget_charging=context.budget_charging,
        fp_iterations=context.fp_iterations,
    )
    engine = BatchAuditEngine(
        config,
        context.build_estimator(),
        rng=np.random.default_rng(context.seed),
    )
    type_arr = np.array([a.type_id for a in alerts], dtype=int)
    time_arr = np.array([a.time_of_day for a in alerts], dtype=float)

    regret: list[float] = []
    entropy: list[float] = []
    gap: list[float] = []
    game_value: list[float] = []
    coverage: dict[int, float] = {}
    for _ in range(cycles):
        result = engine.process_stream(type_arr, time_arr)
        coverage = mean_coverage(result.type_ids, result.thetas)
        metrics = attacker.observe_cycle(coverage, context.payoffs)
        regret.append(metrics.regret)
        entropy.append(metrics.posterior_entropy)
        gap.append(metrics.exploit_gap)
        game_value.append(float(result.game_values.mean()))
        engine.reset()
    return LearningCurveResult(
        attacker=type(attacker).__name__,
        cycles=cycles,
        regret=tuple(regret),
        posterior_entropy=tuple(entropy),
        exploit_gap=tuple(gap),
        mean_game_value=tuple(game_value),
        final_coverage=coverage,
    )
