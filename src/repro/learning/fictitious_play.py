"""Fictitious-play equilibrium backend for the multiple-LP SSE method.

The generic backends (scipy/simplex) and the analytic water-filling solver
compute the SSE by *enumerating* candidate best responses. This module
reaches the same equilibrium through *learning dynamics*: a damped
fictitious-play loop in which

* the attacker runs Hedge (multiplicative weights) over his arms — one per
  alert type plus the no-attack arm — against the auditor's average
  coverage vector, and
* the auditor plays an exact best response to the attacker's average
  mixture: a fractional-knapsack water-fill that ranks types by
  ``y_t * (U_dc - U_du) * coef_t`` per budget unit.

Both sides are maintained as running averages (the "fictitious" play), and
progress is measured by the exploitability gap of the average pair. On
zero-sum instances the gap bounds the distance to the game value and
converges to zero; on general-sum instances the dynamics still concentrate
on the attacker's near-best-response arms.

The dynamics alone cannot hit the 1e-6 conformance tolerance in a bounded
iteration budget (plain fictitious play converges like ``O(1/sqrt(k))``).
The backend therefore uses a propose–refine–complete scheme that is exact
*regardless* of how far the dynamics got:

1. **propose** — the arms the converged mixture concentrates on are the
   candidate best responses;
2. **refine** — each proposed candidate is solved exactly with the
   closed-form single-candidate water-fill
   (:func:`repro.engine.analytic.refine_candidate_solution`);
3. **complete** — any remaining candidate whose cheap value upper bound
   ``U_du + min(1, coef * B) * (U_dc - U_du)`` could still beat (or tie)
   the best refined value is refined as well, so no potential winner or
   tie-set member is ever skipped.

The winner among refined candidates is picked by the canonical
:func:`repro.core.sse.select_candidate` tie-breaking, making the returned
equilibrium bit-comparable with the other backends. Returned solutions
carry no certificate (like cache refinements, they are served, not used
for certified cross-state reuse).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ModelError, SolverError
from repro.core.payoffs import PayoffMatrix
from repro.core.sse import SSESolution, _TIE_TOL, select_candidate
from repro.engine.analytic import refine_candidate_solution

#: Default iteration budget for the dynamics. The propose/complete scheme
#: keeps the *solution* exact at any budget; more iterations only tighten
#: the reported exploitability gap.
DEFAULT_ITERATIONS = 400

#: Default Hedge learning rate (on payoffs normalized to [-1, 1]).
DEFAULT_LEARNING_RATE = 1.0

#: Arms whose payoff against the average coverage is within this window
#: (scale-normalized) of the best arm are proposed for exact refinement.
_PROPOSAL_WINDOW = 1e-3


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax (max-subtracted) over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    weights = np.exp(shifted)
    return weights / weights.sum(axis=-1, keepdims=True)


@dataclass(frozen=True)
class FictitiousPlayResult:
    """Converged state of one fictitious-play run.

    Attributes
    ----------
    coverage:
        The auditor's average coverage ``theta`` per type.
    mixture:
        The attacker's average mixture over arms; the key ``None`` is the
        no-attack arm.
    iterations:
        Iterations actually run (early exit once the gap clears ``tol``).
    gap:
        Scale-normalized exploitability of the average pair:
        ``(max_arm A(theta_bar) - sum_arm y_bar * A(BR(y_bar)))/scale``.
        A certified distance-to-equilibrium bound on zero-sum instances.
    converged:
        Whether ``gap <= tol`` within the iteration budget.
    """

    coverage: dict[int, float]
    mixture: dict[int | None, float]
    iterations: int
    gap: float
    converged: bool


def _arrays(
    coefficient: Mapping[int, float], payoffs: Mapping[int, PayoffMatrix]
) -> tuple[list[int], np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    type_ids = sorted(coefficient)
    if not type_ids:
        raise ModelError("fictitious play needs at least one alert type")
    coef = np.array([float(coefficient[t]) for t in type_ids])
    u_ac = np.array([payoffs[t].u_ac for t in type_ids])
    u_au = np.array([payoffs[t].u_au for t in type_ids])
    span = np.array([payoffs[t].u_dc - payoffs[t].u_du for t in type_ids])
    u_du = np.array([payoffs[t].u_du for t in type_ids])
    return type_ids, coef, u_ac, u_au, span, u_du


def _auditor_best_response(
    weights: np.ndarray,
    budget: float,
    coef: np.ndarray,
    span: np.ndarray,
) -> np.ndarray:
    """Exact auditor best response to attack-arm weights ``weights``.

    Maximizes ``sum_t weights_t * span_t * theta_t`` over the coverage
    polytope ``{theta: sum theta_t / coef_t <= budget, 0 <= theta <= 1}``
    (types with ``coef_t <= 0`` are pinned at zero) — a fractional
    knapsack: fill types by descending value per budget unit.
    """
    theta = np.zeros_like(coef)
    active = coef > 0.0
    if not active.any() or budget <= 0.0:
        return theta
    density = np.where(active, weights * span * coef, -np.inf)
    remaining = float(budget)
    for idx in np.argsort(-density, kind="stable"):
        if not active[idx] or density[idx] <= 0.0 or remaining <= 0.0:
            break
        fill = min(1.0, coef[idx] * remaining)
        theta[idx] = fill
        remaining -= fill / coef[idx]
    return theta


def run_fictitious_play(
    budget: float,
    coefficient: Mapping[int, float],
    payoffs: Mapping[int, PayoffMatrix],
    iterations: int = DEFAULT_ITERATIONS,
    learning_rate: float = DEFAULT_LEARNING_RATE,
    tol: float = 1e-3,
) -> FictitiousPlayResult:
    """Run damped fictitious play and return the averaged pair.

    The attacker side is optimistic Hedge over cumulative (normalized)
    payoffs against the auditor's average coverage; because the attacker
    payoff is linear in ``theta``, the payoff against the average equals
    the average payoff, so the cumulative vector is just
    ``k * A(theta_bar_k)``. The auditor side is the exact knapsack best
    response to the average mixture. Stops early once the normalized
    exploitability gap of the average pair drops to ``tol``.
    """
    if iterations < 1:
        raise SolverError(f"fictitious play needs >= 1 iteration, got {iterations}")
    if not learning_rate > 0.0:
        raise SolverError(f"learning rate must be > 0, got {learning_rate}")
    type_ids, coef, u_ac, u_au, span, u_du = _arrays(coefficient, payoffs)
    del u_du
    n = len(type_ids)
    scale = max(
        1.0, float(np.max(np.abs(u_ac))), float(np.max(np.abs(u_au))), float(span.max())
    )

    # Arm order: the n attack types then the no-attack arm (payoff 0).
    theta_bar = _auditor_best_response(np.full(n, 1.0 / n), budget, coef, span)
    mixture_sum = np.zeros(n + 1)
    gains_prev = np.zeros(n + 1)
    best_gap = np.inf
    best_pair = (theta_bar.copy(), np.full(n + 1, 1.0 / (n + 1)))
    ran = 0
    for k in range(1, iterations + 1):
        ran = k
        gains = np.zeros(n + 1)
        gains[:n] = (theta_bar * u_ac + (1.0 - theta_bar) * u_au) / scale
        # Optimistic Hedge: cumulative payoffs plus a repeat of the latest.
        logits = learning_rate * (k * gains + (gains - gains_prev))
        gains_prev = gains
        mixture = softmax(logits)
        mixture_sum += mixture
        y_bar = mixture_sum / k
        theta_k = _auditor_best_response(y_bar[:n], budget, coef, span)
        theta_bar += (theta_k - theta_bar) / (k + 1.0)

        attacker_best = max(0.0, float(gains[:n].max()))
        against_br = (theta_k * u_ac + (1.0 - theta_k) * u_au) / scale
        held_to = float(np.dot(y_bar[:n], against_br))  # no-attack arm adds 0
        gap = attacker_best - held_to
        if gap < best_gap:
            # Anytime behavior: the gap of the averaged pair is not
            # monotone, so keep the best pair seen rather than the last.
            best_gap = gap
            best_pair = (theta_bar.copy(), y_bar.copy())
            if best_gap <= tol:
                break

    theta_best, y_best = best_pair
    mixture_out: dict[int | None, float] = {
        t: float(y_best[i]) for i, t in enumerate(type_ids)
    }
    mixture_out[None] = float(y_best[n])
    return FictitiousPlayResult(
        coverage={t: float(theta_best[i]) for i, t in enumerate(type_ids)},
        mixture=mixture_out,
        iterations=ran,
        gap=float(best_gap),
        converged=bool(best_gap <= tol),
    )


def solve_multiple_lp_fp(
    budget: float,
    coefficient: Mapping[int, float],
    payoffs: Mapping[int, PayoffMatrix],
    iterations: int = DEFAULT_ITERATIONS,
    learning_rate: float = DEFAULT_LEARNING_RATE,
) -> SSESolution:
    """The multiple-LP SSE via fictitious play + exact refinement.

    See the module docstring: the dynamics propose candidate best
    responses, each proposal is refined exactly, and the completion sweep
    refines every other candidate whose value upper bound could still
    reach the tie window — so the result matches the enumeration backends
    up to the canonical tie-breaking, independent of dynamics quality.
    """
    type_ids, coef, u_ac, u_au, span, u_du = _arrays(coefficient, payoffs)
    played = run_fictitious_play(
        budget, coefficient, payoffs, iterations=iterations,
        learning_rate=learning_rate,
    )

    theta_bar = np.array([played.coverage[t] for t in type_ids])
    arm_payoff = theta_bar * u_ac + (1.0 - theta_bar) * u_au
    scale = max(1.0, float(np.max(np.abs(arm_payoff))))
    window = _PROPOSAL_WINDOW * scale
    proposed = [
        type_ids[i]
        for i in np.argsort(-arm_payoff, kind="stable")
        if arm_payoff[i] >= float(arm_payoff.max()) - window
    ]

    # Per-candidate value upper bound for the completion sweep: coverage of
    # the candidate can at best reach min(1, coef * B), ignoring the
    # best-response constraints — so no skipped candidate can beat it.
    x_max = np.minimum(1.0, np.where(coef > 0.0, coef * budget, 0.0))
    upper = {t: float(u_du[i] + x_max[i] * span[i]) for i, t in enumerate(type_ids)}

    refined: dict[int, SSESolution | None] = {}
    best_value = -np.inf

    def _refine(candidate: int) -> None:
        nonlocal best_value
        solution = refine_candidate_solution(candidate, budget, coefficient, payoffs)
        refined[candidate] = solution
        if solution is not None and solution.auditor_utility > best_value:
            best_value = solution.auditor_utility

    for candidate in proposed:
        _refine(candidate)
    for candidate in sorted(type_ids, key=lambda t: -upper[t]):
        if candidate in refined:
            continue
        if upper[candidate] <= best_value - _TIE_TOL:
            break  # sorted by upper bound: nothing below can enter the tie set
        _refine(candidate)

    winner = select_candidate(
        [
            (candidate, solution.auditor_utility, solution.attacker_utility)
            for candidate, solution in refined.items()
            if solution is not None
        ]
    )
    if winner is None:
        raise ModelError("no feasible best-response LP; game is ill-formed")
    best = refined[winner]
    return replace(
        best,
        lps_solved=len(refined),
        lps_feasible=sum(1 for s in refined.values() if s is not None),
    )
