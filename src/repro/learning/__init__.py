"""Learning subsystem: adaptive attackers and fictitious-play equilibria.

Two halves, both layered strictly above :mod:`repro.core`:

* :mod:`repro.learning.fictitious_play` — the ``"fictitious_play"`` SSE
  backend (damped fictitious-play dynamics + exact candidate refinement);
* :mod:`repro.learning.estimators` / :mod:`repro.learning.attackers` —
  attackers that learn the audit policy across cycles, satisfying the
  static attacker interface of :mod:`repro.audit.attacker`;
* :mod:`repro.learning.loop` — a deterministic multi-cycle driver that
  replays one day's alerts while the attacker adapts, producing regret /
  posterior-entropy / exploitability curves.
"""

from repro.learning.attackers import (
    BayesianLearningAttacker,
    LearningMetrics,
    NoRegretAttacker,
)
from repro.learning.estimators import BetaCoverageEstimator, PolicyEstimator
from repro.learning.fictitious_play import (
    FictitiousPlayResult,
    run_fictitious_play,
    solve_multiple_lp_fp,
)
from repro.learning.loop import LearningCurveResult, run_learning_loop

__all__ = [
    "BayesianLearningAttacker",
    "BetaCoverageEstimator",
    "FictitiousPlayResult",
    "LearningCurveResult",
    "LearningMetrics",
    "NoRegretAttacker",
    "PolicyEstimator",
    "run_fictitious_play",
    "run_learning_loop",
    "solve_multiple_lp_fp",
]
