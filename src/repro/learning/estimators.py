"""Policy estimators: what a learning attacker believes about coverage.

The static attackers of :mod:`repro.audit.attacker` read the auditor's true
marginals. A learning attacker instead maintains a *belief* about the
per-type audit coverage, updated from what he observed across cycles. The
:class:`PolicyEstimator` protocol is that belief's interface; the stock
implementation keeps an independent Beta posterior per type (the
one-dimensional slice of the Dirichlet model: coverage of each type is a
probability, and the observed per-cycle mean coverage is a fractional
Bernoulli outcome).

Updates are deterministic: each observation adds its *expected* counts
``alpha += w * theta`` and ``beta += w * (1 - theta)`` instead of sampling
audit outcomes, so every runner (serial, sharded, service) reproduces the
same posterior bit-for-bit.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from typing import Protocol, runtime_checkable

from repro.errors import ModelError


def _digamma(x: float) -> float:
    """Digamma ``psi(x)`` for ``x > 0`` — stdlib-only.

    Recurrence ``psi(x) = psi(x + 1) - 1/x`` shifts the argument above 10,
    where the asymptotic series (through the ``x^-8`` Bernoulli term) is
    accurate to ~1e-12 — far tighter than anything the entropy diagnostics
    need.
    """
    if not x > 0.0:
        raise ModelError(f"digamma requires x > 0, got {x}")
    value = 0.0
    while x < 10.0:
        value -= 1.0 / x
        x += 1.0
    inv = 1.0 / x
    inv2 = inv * inv
    return value + (
        math.log(x)
        - 0.5 * inv
        - inv2 * (
            1.0 / 12.0
            - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0))
        )
    )


def _beta_entropy(alpha: float, beta: float) -> float:
    """Differential entropy of ``Beta(alpha, beta)`` in nats."""
    log_b = math.lgamma(alpha) + math.lgamma(beta) - math.lgamma(alpha + beta)
    return (
        log_b
        - (alpha - 1.0) * _digamma(alpha)
        - (beta - 1.0) * _digamma(beta)
        + (alpha + beta - 2.0) * _digamma(alpha + beta)
    )


@runtime_checkable
class PolicyEstimator(Protocol):
    """A belief over the auditor's per-type audit coverage."""

    def observe(self, coverage: Mapping[int, float], weight: float = 1.0) -> None:
        """Fold one cycle's observed mean coverage into the belief."""

    def mean(self, type_id: int) -> float:
        """Posterior-mean coverage for ``type_id``."""

    def means(self) -> dict[int, float]:
        """Posterior-mean coverage for every tracked type."""

    def entropy(self) -> float:
        """Mean per-type posterior entropy (nats) — belief uncertainty."""


class BetaCoverageEstimator:
    """Independent Beta posterior over each type's audit coverage.

    Types are registered lazily from the first observation that mentions
    them, each starting at ``Beta(prior_alpha, prior_beta)`` (the default
    uniform prior believes coverage 0.5 everywhere).
    """

    def __init__(self, prior_alpha: float = 1.0, prior_beta: float = 1.0) -> None:
        if not (prior_alpha > 0.0 and prior_beta > 0.0):
            raise ModelError(
                f"Beta prior parameters must be > 0, got "
                f"({prior_alpha}, {prior_beta})"
            )
        self.prior_alpha = float(prior_alpha)
        self.prior_beta = float(prior_beta)
        self._alpha: dict[int, float] = {}
        self._beta: dict[int, float] = {}

    def _ensure(self, type_id: int) -> None:
        if type_id not in self._alpha:
            self._alpha[type_id] = self.prior_alpha
            self._beta[type_id] = self.prior_beta

    def observe(self, coverage: Mapping[int, float], weight: float = 1.0) -> None:
        if weight <= 0.0:
            raise ModelError(f"observation weight must be > 0, got {weight}")
        for type_id in sorted(coverage):
            theta = float(coverage[type_id])
            if not 0.0 <= theta <= 1.0:
                raise ModelError(
                    f"observed coverage for type {type_id} must be in [0, 1], "
                    f"got {theta}"
                )
            self._ensure(type_id)
            self._alpha[type_id] += weight * theta
            self._beta[type_id] += weight * (1.0 - theta)

    def mean(self, type_id: int) -> float:
        self._ensure(type_id)
        alpha, beta = self._alpha[type_id], self._beta[type_id]
        return alpha / (alpha + beta)

    def means(self) -> dict[int, float]:
        return {t: self.mean(t) for t in sorted(self._alpha)}

    def entropy(self) -> float:
        if not self._alpha:
            return _beta_entropy(self.prior_alpha, self.prior_beta)
        return sum(
            _beta_entropy(self._alpha[t], self._beta[t]) for t in self._alpha
        ) / len(self._alpha)
