"""Attackers that learn the audit policy across cycles.

Both attackers satisfy the static attacker interface of
:mod:`repro.audit.attacker` (``choose_type`` + ``proceeds_after_warning``),
so they drop into :class:`~repro.audit.cycle.AuditCycle`, the Monte Carlo
driver, and the scenario runner unchanged. The difference is *what they
read*: instead of the auditor's true marginals they consult an internal
belief, updated once per cycle via :meth:`observe_cycle` with the cycle's
mean observed coverage.

* :class:`BayesianLearningAttacker` keeps a Beta posterior per type
  (:class:`~repro.learning.estimators.BetaCoverageEstimator`) and
  best-responds to the posterior-mean coverage.
* :class:`NoRegretAttacker` runs Hedge (multiplicative weights) over his
  arms — one per alert type plus a no-attack arm — on full-information
  per-cycle payoff feedback; his average regret decays like
  ``O(sqrt(log n / k))``.

Every update is deterministic (expected counts, no sampling), preserving
the bit-identical determinism contract across the serial runner, the
sharded :class:`~repro.scenarios.runner.ParallelRunner`, and the service
submit path. Within a Monte Carlo trial a learning attacker is exactly as
static as :class:`~repro.audit.attacker.RationalAttacker` — beliefs only
move at cycle boundaries.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

from repro.errors import ModelError
from repro.core.payoffs import PayoffMatrix
from repro.core.signaling import SignalingScheme
from repro.audit.attacker import AttackPlan
from repro.learning.estimators import BetaCoverageEstimator


@dataclass(frozen=True)
class LearningMetrics:
    """One cycle's learning diagnostics, scale-normalized.

    Attributes
    ----------
    cycle:
        1-based index of the cycle that produced these numbers.
    regret:
        Average external regret per cycle so far (no-regret attackers;
        0.0 for attackers without a regret notion). Normalized by the
        running payoff scale so it is comparable across games.
    posterior_entropy:
        Belief uncertainty in nats — mean Beta posterior entropy for the
        Bayesian attacker, Shannon entropy of the arm mixture for Hedge.
    exploit_gap:
        How exploitable the attacker's current play is against the
        *observed* coverage: best-arm payoff minus the attacker's realized
        (believed-choice or mixture) payoff, divided by the payoff scale.
    """

    cycle: int
    regret: float
    posterior_entropy: float
    exploit_gap: float


def _proceeds_rationally(scheme: SignalingScheme, payoff: PayoffMatrix) -> bool:
    """The rational warning response (shared by both learning attackers).

    Warnings are observed *within* the cycle — the signal realization is in
    front of the attacker, so there is nothing to learn: he proceeds only
    when the conditional utility is strictly positive (payoff-scaled
    tolerance, as in :class:`~repro.audit.attacker.RationalAttacker`).
    """
    value = scheme.attacker_proceed_utility_given_warning(payoff)
    return value > 1e-9 * max(1.0, abs(payoff.u_au))


class BayesianLearningAttacker:
    """Best-responds to a Beta posterior over per-type audit coverage.

    Starts from ``Beta(prior_alpha, prior_beta)`` per type (uniform by
    default — believed coverage 0.5 everywhere) and folds each cycle's
    observed mean coverage in as expected counts weighted by
    ``observation_weight``.
    """

    def __init__(
        self,
        prior_alpha: float = 1.0,
        prior_beta: float = 1.0,
        observation_weight: float = 1.0,
    ) -> None:
        if observation_weight <= 0.0:
            raise ModelError(
                f"observation weight must be > 0, got {observation_weight}"
            )
        self.estimator = BetaCoverageEstimator(prior_alpha, prior_beta)
        self.observation_weight = float(observation_weight)
        self.cycles = 0
        self.last_metrics: LearningMetrics | None = None

    def believed_coverage(self, type_ids) -> dict[int, float]:
        """Posterior-mean coverage for the candidate types."""
        return {t: self.estimator.mean(t) for t in sorted(type_ids)}

    def choose_type(
        self,
        thetas: Mapping[int, float],
        payoffs: Mapping[int, PayoffMatrix],
    ) -> AttackPlan:
        """Best response to the *believed* coverage (true thetas ignored)."""
        if not thetas:
            raise ModelError("attacker needs at least one candidate type")
        believed = self.believed_coverage(thetas)
        best_type = None
        best_value = -math.inf
        for type_id in sorted(believed):
            value = payoffs[type_id].attacker_utility(believed[type_id])
            if value > best_value:
                best_type = type_id
                best_value = value
        if best_value < 0:
            return AttackPlan(type_id=None, expected_utility=0.0)
        return AttackPlan(type_id=best_type, expected_utility=best_value)

    def proceeds_after_warning(
        self, scheme: SignalingScheme, payoff: PayoffMatrix
    ) -> bool:
        return _proceeds_rationally(scheme, payoff)

    def observe_cycle(
        self,
        coverage: Mapping[int, float],
        payoffs: Mapping[int, PayoffMatrix],
    ) -> LearningMetrics:
        """Fold one cycle's mean observed coverage into the posterior.

        Returns the cycle's diagnostics; ``exploit_gap`` compares the best
        attack against the observed coverage with the value the attacker's
        *post-update* believed best response actually achieves there.
        """
        if not coverage:
            raise ModelError("observed coverage must cover at least one type")
        self.estimator.observe(coverage, weight=self.observation_weight)
        self.cycles += 1

        true_values = {
            t: payoffs[t].attacker_utility(coverage[t]) for t in sorted(coverage)
        }
        scale = max(1.0, max(abs(v) for v in true_values.values()))
        best_true = max(0.0, max(true_values.values()))
        plan = self.choose_type(coverage, payoffs)
        realized = 0.0 if plan.type_id is None else true_values[plan.type_id]
        self.last_metrics = LearningMetrics(
            cycle=self.cycles,
            regret=0.0,
            posterior_entropy=self.estimator.entropy(),
            exploit_gap=(best_true - realized) / scale,
        )
        return self.last_metrics


class NoRegretAttacker:
    """Hedge (multiplicative weights) over attack types plus no-attack.

    Keeps one cumulative-gain counter per arm; the mixture is the softmax
    of ``learning_rate * gains / scale`` with a running payoff scale, so
    the learning rate is comparable across games. Feedback is
    full-information: after each cycle every arm's counterfactual payoff
    against the observed mean coverage is revealed (the no-attack arm
    always pays 0).
    """

    def __init__(self, learning_rate: float = 0.5) -> None:
        if not learning_rate > 0.0:
            raise ModelError(
                f"learning rate must be > 0, got {learning_rate}"
            )
        self.learning_rate = float(learning_rate)
        self.cycles = 0
        self.last_metrics: LearningMetrics | None = None
        self._gains: dict[int | None, float] = {None: 0.0}
        self._realized = 0.0
        self._scale = 1.0

    def _arms(self, type_ids) -> list[int | None]:
        """Sorted attack arms then the no-attack arm, registered lazily."""
        arms: list[int | None] = sorted(type_ids)
        for arm in arms:
            self._gains.setdefault(arm, 0.0)
        arms.append(None)
        return arms

    def _weights(self, arms) -> dict[int | None, float]:
        logits = [self.learning_rate * self._gains[a] / self._scale for a in arms]
        top = max(logits)
        raw = [math.exp(l - top) for l in logits]
        total = sum(raw)
        return {arm: w / total for arm, w in zip(arms, raw)}

    def choose_type(
        self,
        thetas: Mapping[int, float],
        payoffs: Mapping[int, PayoffMatrix],
    ) -> AttackPlan:
        """Deterministic modal arm (ties go to the smallest type id).

        ``expected_utility`` reports the chosen arm's empirical mean gain,
        which is what the attacker believes the arm is worth.
        """
        if not thetas:
            raise ModelError("attacker needs at least one candidate type")
        arms = self._arms(thetas)
        weights = self._weights(arms)
        best = max(arms, key=lambda a: weights[a] - (1e-12 if a is None else 0.0))
        if best is None:
            return AttackPlan(type_id=None, expected_utility=0.0)
        mean_gain = self._gains[best] / self.cycles if self.cycles else 0.0
        return AttackPlan(type_id=best, expected_utility=mean_gain)

    def type_distribution(
        self,
        thetas: Mapping[int, float],
        payoffs: Mapping[int, PayoffMatrix],
    ) -> dict[int, float]:
        """Mixture over attack types, conditional on attacking.

        The no-attack arm's weight is renormalized away so the returned
        probabilities sum to 1 — the sampled Monte Carlo path draws a type
        from this conditional, mirroring the quantal attacker.
        """
        if not thetas:
            raise ModelError("attacker needs at least one candidate type")
        arms = self._arms(thetas)
        weights = self._weights(arms)
        attack_total = sum(weights[a] for a in arms if a is not None)
        return {
            a: weights[a] / attack_total for a in arms if a is not None
        }

    def proceeds_after_warning(
        self, scheme: SignalingScheme, payoff: PayoffMatrix
    ) -> bool:
        return _proceeds_rationally(scheme, payoff)

    def observe_cycle(
        self,
        coverage: Mapping[int, float],
        payoffs: Mapping[int, PayoffMatrix],
    ) -> LearningMetrics:
        """Full-information Hedge update from one cycle's mean coverage."""
        if not coverage:
            raise ModelError("observed coverage must cover at least one type")
        arms = self._arms(coverage)
        gains = {
            a: 0.0 if a is None else payoffs[a].attacker_utility(coverage[a])
            for a in arms
        }
        self._scale = max(
            self._scale, max(abs(g) for g in gains.values())
        )
        weights = self._weights(arms)  # the mixture played this cycle
        realized = sum(weights[a] * gains[a] for a in arms)
        self._realized += realized
        for arm in arms:
            self._gains[arm] += gains[arm]
        self.cycles += 1

        cycle_scale = max(1.0, max(abs(g) for g in gains.values()))
        best_cum = max(self._gains[a] for a in arms)
        entropy = -sum(
            w * math.log(w) for w in weights.values() if w > 0.0
        )
        self.last_metrics = LearningMetrics(
            cycle=self.cycles,
            regret=(best_cum - self._realized) / (self.cycles * self._scale),
            posterior_entropy=entropy,
            exploit_gap=(max(0.0, max(gains.values())) - realized) / cycle_scale,
        )
        return self.last_metrics
