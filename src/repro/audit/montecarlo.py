"""Attacker-in-the-loop Monte Carlo validation.

The paper's evaluation (and ours) plots *expected* utilities — LP
objectives. This module closes the loop empirically: it simulates actual
attacks against the running SAG, samples the warning, lets a rational
attacker react (quit on warning — the OSSP makes proceeding unattractive),
samples the end-of-cycle audit with the recorded signal-conditional
probability, and scores realized payoffs. Averaged over trials, the
realized auditor utility converges to the predicted expected game value —
a whole-system correctness check no unit test provides.

It also implements the paper's *late attacker* thought experiment
("imagine, for instance, an attacker who only attacks at the very end of
an audit cycle"): attack timing can be uniform over the day or pinned to
the final alerts, which is exactly the scenario knowledge rollback exists
to defuse.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError
from repro.audit.attacker import QuantalResponseAttacker, RationalAttacker
from repro.audit.policies import CycleContext
from repro.core.game import SAGConfig, SignalingAuditGame
from repro.core.signaling import SignalingScheme, solve_ossp
from repro.engine.cache import SSESolutionCache
from repro.logstore.store import AlertRecord
from repro.stats.poisson import PoissonReciprocalMoment

#: Attack-timing strategies.
TIMING_UNIFORM = "uniform"      # attack at a uniformly random alert slot
TIMING_LATE = "late"            # attack within the last alert slots


@dataclass(frozen=True)
class TrialOutcome:
    """One simulated attack against one audit day.

    ``expected_auditor_utility`` is the solver-predicted game value at the
    attacked state — what the figures plot; ``auditor_utility`` is the
    realized payoff of this trial's lottery.
    """

    attacked: bool
    attack_type: int | None
    attack_time: float
    warned: bool
    proceeded: bool
    audited: bool
    auditor_utility: float
    attacker_utility: float
    expected_auditor_utility: float


@dataclass(frozen=True)
class MonteCarloResult:
    """Aggregate of attacker-in-the-loop trials."""

    n_trials: int
    timing: str
    mean_auditor_utility: float
    mean_attacker_utility: float
    mean_expected_utility: float
    attack_rate: float
    warned_rate: float
    quit_rate: float
    audit_rate: float

    @property
    def expectation_gap(self) -> float:
        """|empirical mean - predicted expectation| for the auditor."""
        return abs(self.mean_auditor_utility - self.mean_expected_utility)


def run_attacker_in_the_loop(
    alerts: Sequence[AlertRecord],
    context: CycleContext,
    n_trials: int = 200,
    timing: str = TIMING_UNIFORM,
    signaling_enabled: bool = True,
    seed: int = 0,
    attacker: RationalAttacker | QuantalResponseAttacker | None = None,
    robust_margin: float = 0.0,
    solution_cache: SSESolutionCache | None = None,
) -> MonteCarloResult:
    """Simulate ``n_trials`` independent attack days.

    Each trial replays the day's (false-positive) alert stream through a
    fresh :class:`SignalingAuditGame`; one alert slot is the attacker's. At
    that slot the rational attacker observes the committed distribution,
    picks the best alert type, attacks only when his expected utility is
    non-negative, quits when warned, and otherwise rides out the audit
    lottery.

    Parameters
    ----------
    alerts:
        The day's chronological alert stream (background traffic).
    context:
        Cycle context (history, budget, payoffs) shared by all trials.
    timing:
        :data:`TIMING_UNIFORM` or :data:`TIMING_LATE`.
    signaling_enabled:
        ``False`` simulates against the online-SSE baseline instead.
    attacker:
        A :class:`RationalAttacker` (default) or a
        :class:`QuantalResponseAttacker` (noisy type choice, probabilistic
        warning compliance; always participates).
    robust_margin:
        Forwarded to the game: > 0 hardens the warning's quit constraint
        (the robust-SAG extension).
    solution_cache:
        Optional :class:`~repro.engine.cache.SSESolutionCache` shared by
        every trial. Trials replay the same background stream, so even the
        exact (step-0) mode converts most repeat solves into lookups
        without changing any result.
    """
    if not alerts:
        raise ExperimentError("need a non-empty alert stream")
    if timing not in (TIMING_UNIFORM, TIMING_LATE):
        raise ExperimentError(f"unknown timing strategy {timing!r}")
    rng = np.random.default_rng(seed)
    attacker = attacker or RationalAttacker()
    # One reciprocal-moment memo for the whole run: the rates repeat across
    # trials, so a per-game (empty) memo would redo identical series sums.
    moment = PoissonReciprocalMoment()

    outcomes: list[TrialOutcome] = []
    for trial in range(n_trials):
        game = SignalingAuditGame(
            SAGConfig(
                payoffs=context.payoffs,
                costs=context.costs,
                budget=context.budget,
                backend=context.backend,
                signaling_enabled=signaling_enabled,
                budget_charging=context.budget_charging,
                robust_margin=robust_margin,
            ),
            context.build_estimator(),
            rng=np.random.default_rng(seed + 1000 + trial),
            moment=moment,
            solution_cache=solution_cache,
        )
        if timing == TIMING_UNIFORM:
            slot = int(rng.integers(len(alerts)))
        else:
            tail = max(1, len(alerts) // 20)
            slot = len(alerts) - 1 - int(rng.integers(tail))

        outcome: TrialOutcome | None = None
        for index, alert in enumerate(alerts):
            if index == slot:
                outcome = _attack_at_slot(
                    game, alert.time_of_day, context, attacker, rng,
                    signaling_enabled, robust_margin,
                )
            else:
                game.process_alert(alert.type_id, alert.time_of_day)
        assert outcome is not None  # slot always within range
        outcomes.append(outcome)

    return MonteCarloResult(
        n_trials=n_trials,
        timing=timing,
        mean_auditor_utility=float(
            np.mean([o.auditor_utility for o in outcomes])
        ),
        mean_attacker_utility=float(
            np.mean([o.attacker_utility for o in outcomes])
        ),
        mean_expected_utility=float(
            np.mean([o.expected_auditor_utility for o in outcomes])
        ),
        attack_rate=float(np.mean([o.attacked for o in outcomes])),
        warned_rate=float(np.mean([o.warned for o in outcomes])),
        quit_rate=float(
            np.mean([o.warned and not o.proceeded for o in outcomes])
        ),
        audit_rate=float(np.mean([o.audited for o in outcomes])),
    )


def _attack_at_slot(
    game: SignalingAuditGame,
    time_of_day: float,
    context: CycleContext,
    attacker: RationalAttacker | QuantalResponseAttacker,
    rng: np.random.Generator,
    signaling_enabled: bool,
    robust_margin: float,
) -> TrialOutcome:
    """Play out the attacker's slot and score realized payoffs."""
    # The attacker's access itself raises an alert; process it to obtain
    # the equilibrium commitment he observes and best-responds to. (The
    # type fed to process_alert is the attacker's eventual choice below for
    # bookkeeping; the equilibrium marginals do not depend on it.)
    probe = game.process_alert(next(iter(context.payoffs)), time_of_day)

    if isinstance(attacker, QuantalResponseAttacker):
        distribution = attacker.type_distribution(probe.sse.thetas, context.payoffs)
        type_ids = sorted(distribution)
        probabilities = [distribution[t] for t in type_ids]
        attack_type: int | None = int(
            rng.choice(np.asarray(type_ids), p=probabilities)
        )
    else:
        plan = attacker.choose_type(probe.sse.thetas, context.payoffs)
        attack_type = plan.type_id
    if attack_type is None:
        return TrialOutcome(
            attacked=False, attack_type=None, attack_time=time_of_day,
            warned=False, proceeded=False, audited=False,
            auditor_utility=0.0, attacker_utility=0.0,
            expected_auditor_utility=0.0,
        )
    payoff = context.payoffs[attack_type]
    theta = probe.sse.theta_of(attack_type)

    if signaling_enabled:
        scheme = _scheme_for(theta, payoff, robust_margin)
        expected = scheme.auditor_utility(payoff)
        warned = bool(rng.random() < scheme.warning_probability)
        if warned:
            if isinstance(attacker, QuantalResponseAttacker):
                proceeded = bool(
                    rng.random() < attacker.proceed_probability(scheme, payoff)
                )
            else:
                proceeded = attacker.proceeds_after_warning(scheme, payoff)
            if not proceeded:
                return TrialOutcome(
                    attacked=True, attack_type=attack_type,
                    attack_time=time_of_day, warned=True, proceeded=False,
                    audited=False, auditor_utility=0.0, attacker_utility=0.0,
                    expected_auditor_utility=expected,
                )
            audit_probability = scheme.audit_given_warning
        else:
            proceeded = True
            audit_probability = scheme.audit_given_silence
    else:
        expected = payoff.auditor_utility(theta)
        warned = False
        proceeded = True
        audit_probability = theta

    audited = bool(rng.random() < audit_probability)
    return TrialOutcome(
        attacked=True, attack_type=attack_type, attack_time=time_of_day,
        warned=warned, proceeded=proceeded, audited=audited,
        auditor_utility=payoff.u_dc if audited else payoff.u_du,
        attacker_utility=payoff.u_ac if audited else payoff.u_au,
        expected_auditor_utility=expected,
    )


def _scheme_for(
    theta: float, payoff, robust_margin: float
) -> SignalingScheme:
    if robust_margin > 0:
        from repro.extensions.robust import solve_robust_ossp

        return solve_robust_ossp(theta, payoff, robust_margin)
    return solve_ossp(theta, payoff)
