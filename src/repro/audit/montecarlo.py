"""Attacker-in-the-loop Monte Carlo validation.

The paper's evaluation (and ours) plots *expected* utilities — LP
objectives. This module closes the loop empirically: it simulates actual
attacks against the running SAG, samples the warning, lets a rational
attacker react (quit on warning — the OSSP makes proceeding unattractive),
samples the end-of-cycle audit with the recorded signal-conditional
probability, and scores realized payoffs. Averaged over trials, the
realized auditor utility converges to the predicted expected game value —
a whole-system correctness check no unit test provides.

It also implements the paper's *late attacker* thought experiment
("imagine, for instance, an attacker who only attacks at the very end of
an audit cycle"): attack timing can be uniform over the day or pinned to
the final alerts, which is exactly the scenario knowledge rollback exists
to defuse.

Seeding contract
----------------
Trials are mutually independent by construction: a master ``seed``
expands into one ``uint64`` root per trial via
``numpy.random.SeedSequence(seed).generate_state(n_trials)``
(:func:`spawn_trial_seeds`), and each trial derives its simulation and
game streams by spawning its own ``SeedSequence``. Consequences the rest
of the codebase relies on:

* any contiguous (or even arbitrary) slice of the trial-seed list can be
  evaluated on a different worker process and the merged outcome list is
  bit-identical to a serial run (:meth:`MonteCarloResult.merge`);
* any single trial can be replayed in isolation from the seed recorded in
  :attr:`MonteCarloResult.trial_seeds` (:func:`run_single_trial`).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import asdict, dataclass

import numpy as np

from repro.errors import ExperimentError
from repro.audit.attacker import QuantalResponseAttacker, RationalAttacker
from repro.audit.policies import CycleContext
from repro.core.game import SAGConfig, SignalingAuditGame
from repro.core.signaling import SignalingScheme, solve_ossp
from repro.engine.cache import SSESolutionCache
from repro.logstore.store import AlertRecord
from repro.stats.poisson import PoissonReciprocalMoment

#: Attack-timing strategies.
TIMING_UNIFORM = "uniform"      # attack at a uniformly random alert slot
TIMING_LATE = "late"            # attack within the last alert slots


def spawn_trial_seeds(seed: int, n_trials: int) -> tuple[int, ...]:
    """Expand a master seed into one independent root seed per trial.

    Uses ``SeedSequence.generate_state`` (not sequential offsets), so the
    per-trial streams are decorrelated regardless of how close master seeds
    are, and the expansion of ``n`` trials is a prefix of the expansion of
    ``m > n`` trials — growing a run keeps every existing trial unchanged.
    """
    if n_trials <= 0:
        raise ExperimentError(f"n_trials must be positive, got {n_trials}")
    state = np.random.SeedSequence(seed).generate_state(n_trials, dtype=np.uint64)
    return tuple(int(word) for word in state)


@dataclass(frozen=True)
class TrialOutcome:
    """One simulated attack against one audit day.

    ``expected_auditor_utility`` is the solver-predicted game value at the
    attacked state — what the figures plot; ``auditor_utility`` is the
    realized payoff of this trial's lottery. With multiple attackers
    (``n_attackers > 1``) the utilities are summed over attackers,
    ``attacked``/``warned``/``audited`` report whether the event happened
    for *any* of them, ``proceeded`` keeps ``warned and not proceeded``
    meaning "some warned attacker quit" (see ``_combine_attacks``), and
    ``attack_type``/``attack_time`` describe the chronologically first
    launched attack.
    """

    attacked: bool
    attack_type: int | None
    attack_time: float
    warned: bool
    proceeded: bool
    audited: bool
    auditor_utility: float
    attacker_utility: float
    expected_auditor_utility: float


@dataclass(frozen=True)
class MonteCarloResult:
    """Aggregate of attacker-in-the-loop trials.

    The payload is shard-mergeable and replayable: ``outcomes`` holds every
    trial in order and ``trial_seeds`` the per-trial RNG roots, so
    :meth:`merge` can stitch worker shards back into the serial result and
    :func:`run_single_trial` can re-derive any single trial in isolation.
    """

    n_trials: int
    timing: str
    mean_auditor_utility: float
    mean_attacker_utility: float
    mean_expected_utility: float
    attack_rate: float
    warned_rate: float
    quit_rate: float
    audit_rate: float
    trial_seeds: tuple[int, ...] = ()
    outcomes: tuple[TrialOutcome, ...] = ()
    master_seed: int | None = None

    @property
    def expectation_gap(self) -> float:
        """|empirical mean - predicted expectation| for the auditor."""
        return abs(self.mean_auditor_utility - self.mean_expected_utility)

    @classmethod
    def from_outcomes(
        cls,
        timing: str,
        outcomes: Sequence[TrialOutcome],
        trial_seeds: Sequence[int] = (),
        master_seed: int | None = None,
    ) -> "MonteCarloResult":
        """Aggregate an ordered list of trial outcomes.

        This is the *only* aggregation code path (serial runs and shard
        merges both land here), so identical outcome lists always produce
        identical floating-point aggregates.
        """
        if not outcomes:
            raise ExperimentError("cannot aggregate zero trial outcomes")
        if trial_seeds and len(trial_seeds) != len(outcomes):
            raise ExperimentError(
                f"got {len(trial_seeds)} trial seeds for {len(outcomes)} outcomes"
            )
        return cls(
            n_trials=len(outcomes),
            timing=timing,
            mean_auditor_utility=float(
                np.mean([o.auditor_utility for o in outcomes])
            ),
            mean_attacker_utility=float(
                np.mean([o.attacker_utility for o in outcomes])
            ),
            mean_expected_utility=float(
                np.mean([o.expected_auditor_utility for o in outcomes])
            ),
            attack_rate=float(np.mean([o.attacked for o in outcomes])),
            warned_rate=float(np.mean([o.warned for o in outcomes])),
            quit_rate=float(
                np.mean([o.warned and not o.proceeded for o in outcomes])
            ),
            audit_rate=float(np.mean([o.audited for o in outcomes])),
            trial_seeds=tuple(int(s) for s in trial_seeds),
            outcomes=tuple(outcomes),
            master_seed=master_seed,
        )

    @classmethod
    def merge(cls, shards: Sequence["MonteCarloResult"]) -> "MonteCarloResult":
        """Concatenate shard results (in shard order) into one aggregate.

        Shards produced by slicing one :func:`spawn_trial_seeds` expansion
        merge back into exactly the serial result: outcomes and seeds are
        concatenated, and the aggregates are recomputed through
        :meth:`from_outcomes` over the full ordered list.
        """
        if not shards:
            raise ExperimentError("cannot merge zero Monte Carlo shards")
        timings = {shard.timing for shard in shards}
        if len(timings) != 1:
            raise ExperimentError(
                f"cannot merge shards with differing timings: {sorted(timings)}"
            )
        for shard in shards:
            if not shard.outcomes:
                raise ExperimentError(
                    "cannot merge a shard without per-trial outcomes"
                )
        outcomes = [o for shard in shards for o in shard.outcomes]
        seeds = [s for shard in shards for s in shard.trial_seeds]
        masters = {shard.master_seed for shard in shards}
        master = masters.pop() if len(masters) == 1 else None
        return cls.from_outcomes(
            timing=shards[0].timing,
            outcomes=outcomes,
            trial_seeds=seeds,
            master_seed=master,
        )

    def to_dict(self) -> dict:
        """JSON-ready payload (aggregates, per-trial seeds, and outcomes)."""
        return {
            "n_trials": self.n_trials,
            "timing": self.timing,
            "master_seed": self.master_seed,
            "mean_auditor_utility": self.mean_auditor_utility,
            "mean_attacker_utility": self.mean_attacker_utility,
            "mean_expected_utility": self.mean_expected_utility,
            "expectation_gap": self.expectation_gap,
            "attack_rate": self.attack_rate,
            "warned_rate": self.warned_rate,
            "quit_rate": self.quit_rate,
            "audit_rate": self.audit_rate,
            "trial_seeds": list(self.trial_seeds),
            "trials": [asdict(outcome) for outcome in self.outcomes],
        }


def run_single_trial(
    alerts: Sequence[AlertRecord],
    context: CycleContext,
    trial_seed: int,
    timing: str = TIMING_UNIFORM,
    signaling_enabled: bool = True,
    attacker: RationalAttacker | QuantalResponseAttacker | None = None,
    robust_margin: float = 0.0,
    solution_cache: SSESolutionCache | None = None,
    moment: PoissonReciprocalMoment | None = None,
    n_attackers: int = 1,
) -> TrialOutcome:
    """Simulate one independent attack day from its recorded root seed.

    ``trial_seed`` fully determines the trial: the simulation stream (slot
    choice, warning/audit lotteries) and the game's signal-sampling stream
    are both spawned from ``SeedSequence(trial_seed)``. Replaying a trial
    from :attr:`MonteCarloResult.trial_seeds` therefore reproduces its
    :class:`TrialOutcome` exactly, with no other trials run.
    """
    if not alerts:
        raise ExperimentError("need a non-empty alert stream")
    if timing not in (TIMING_UNIFORM, TIMING_LATE):
        raise ExperimentError(f"unknown timing strategy {timing!r}")
    if n_attackers < 1:
        raise ExperimentError(f"n_attackers must be >= 1, got {n_attackers}")
    if n_attackers > len(alerts):
        raise ExperimentError(
            f"{n_attackers} attackers need at least as many alert slots, "
            f"got {len(alerts)}"
        )
    attacker = attacker or RationalAttacker()
    sim_sequence, game_sequence = np.random.SeedSequence(trial_seed).spawn(2)
    rng = np.random.default_rng(sim_sequence)
    game = SignalingAuditGame(
        SAGConfig(
            payoffs=context.payoffs,
            costs=context.costs,
            budget=context.budget,
            backend=context.backend,
            signaling_enabled=signaling_enabled,
            budget_charging=context.budget_charging,
            robust_margin=robust_margin,
            fp_iterations=context.fp_iterations,
        ),
        context.build_estimator(),
        rng=np.random.default_rng(game_sequence),
        moment=moment,
        solution_cache=solution_cache,
    )
    if timing == TIMING_UNIFORM:
        pool = len(alerts)
        offset = 0
    else:
        pool = max(n_attackers, len(alerts) // 20)
        offset = len(alerts) - pool
    slots = offset + rng.choice(pool, size=n_attackers, replace=False)
    slot_set = set(int(s) for s in slots)

    attacks: list[TrialOutcome] = []
    for index, alert in enumerate(alerts):
        if index in slot_set:
            attacks.append(
                _attack_at_slot(
                    game, alert.time_of_day, context, attacker, rng,
                    signaling_enabled, robust_margin,
                )
            )
        else:
            game.process_alert(alert.type_id, alert.time_of_day)
    return _combine_attacks(attacks)


def run_trials(
    alerts: Sequence[AlertRecord],
    context: CycleContext,
    trial_seeds: Sequence[int],
    timing: str = TIMING_UNIFORM,
    signaling_enabled: bool = True,
    attacker: RationalAttacker | QuantalResponseAttacker | None = None,
    robust_margin: float = 0.0,
    solution_cache: SSESolutionCache | None = None,
    cache_factory: Callable[[], SSESolutionCache | None] | None = None,
    n_attackers: int = 1,
    attacker_factory: Callable[[], object] | None = None,
) -> list[TrialOutcome]:
    """Run one trial per seed, in order (a shard's worth of work).

    Trials share one reciprocal-moment memo (the rates repeat across
    trials) and, optionally, one solution cache; neither changes any
    outcome — the memo is exact and an exact-mode cache returns the
    identical solution a fresh solve would.

    ``cache_factory`` overrides ``solution_cache`` when given: it is
    called once per trial to build that trial's private cache (the hook
    the scenario runner's quantized ``per-trial`` mode uses — a quantized
    cache confined to one trial cannot couple trials, so sharding stays
    result-invariant; the factory may retain references for stats).

    ``attacker_factory`` mirrors it for the attacker: called once per
    trial so *stateful* attackers (the learning models of
    :mod:`repro.learning`) start every trial from a fresh belief —
    without it, a shared learning attacker would couple trials and make
    outcomes depend on how trials shard across workers.
    """
    moment = PoissonReciprocalMoment()
    attacker = attacker or RationalAttacker()
    return [
        run_single_trial(
            alerts,
            context,
            trial_seed,
            timing=timing,
            signaling_enabled=signaling_enabled,
            attacker=(
                attacker_factory() if attacker_factory is not None else attacker
            ),
            robust_margin=robust_margin,
            solution_cache=(
                cache_factory() if cache_factory is not None else solution_cache
            ),
            moment=moment,
            n_attackers=n_attackers,
        )
        for trial_seed in trial_seeds
    ]


def run_attacker_in_the_loop(
    alerts: Sequence[AlertRecord],
    context: CycleContext,
    n_trials: int = 200,
    timing: str = TIMING_UNIFORM,
    signaling_enabled: bool = True,
    seed: int = 0,
    attacker: RationalAttacker | QuantalResponseAttacker | None = None,
    robust_margin: float = 0.0,
    solution_cache: SSESolutionCache | None = None,
    n_attackers: int = 1,
) -> MonteCarloResult:
    """Simulate ``n_trials`` independent attack days.

    Each trial replays the day's (false-positive) alert stream through a
    fresh :class:`SignalingAuditGame`; one alert slot (``n_attackers`` of
    them in the multi-attacker extension) is the attacker's. At that slot
    the rational attacker observes the committed distribution, picks the
    best alert type, attacks only when his expected utility is
    non-negative, quits when warned, and otherwise rides out the audit
    lottery.

    Parameters
    ----------
    alerts:
        The day's chronological alert stream (background traffic).
    context:
        Cycle context (history, budget, payoffs) shared by all trials.
    timing:
        :data:`TIMING_UNIFORM` or :data:`TIMING_LATE`.
    signaling_enabled:
        ``False`` simulates against the online-SSE baseline instead.
    seed:
        Master seed; expanded into per-trial roots by
        :func:`spawn_trial_seeds` (recorded on the result for replay).
    attacker:
        A :class:`RationalAttacker` (default) or a
        :class:`QuantalResponseAttacker` (noisy type choice, probabilistic
        warning compliance; always participates).
    robust_margin:
        Forwarded to the game: > 0 hardens the warning's quit constraint
        (the robust-SAG extension).
    solution_cache:
        Optional :class:`~repro.engine.cache.SSESolutionCache` shared by
        every trial. Trials replay the same background stream, so even the
        exact (step-0) mode converts most repeat solves into lookups
        without changing any result.
    n_attackers:
        Independent symmetric attackers per trial (the paper's
        multiple-attacker future-work direction; see
        :mod:`repro.extensions.multi_attacker`). Utilities in each
        :class:`TrialOutcome` are summed over attackers.
    """
    if not alerts:
        raise ExperimentError("need a non-empty alert stream")
    if timing not in (TIMING_UNIFORM, TIMING_LATE):
        raise ExperimentError(f"unknown timing strategy {timing!r}")
    trial_seeds = spawn_trial_seeds(seed, n_trials)
    outcomes = run_trials(
        alerts,
        context,
        trial_seeds,
        timing=timing,
        signaling_enabled=signaling_enabled,
        attacker=attacker,
        robust_margin=robust_margin,
        solution_cache=solution_cache,
        n_attackers=n_attackers,
    )
    return MonteCarloResult.from_outcomes(
        timing=timing,
        outcomes=outcomes,
        trial_seeds=trial_seeds,
        master_seed=seed,
    )


def _combine_attacks(attacks: list[TrialOutcome]) -> TrialOutcome:
    """Aggregate per-attacker results into one trial outcome.

    The single-attacker case passes through unchanged; for multiple
    symmetric attackers the utilities add (independent attackers, linear
    utilities — the aggregation :mod:`repro.extensions.multi_attacker`
    derives for the expected values) and ``attacked``/``warned``/
    ``audited`` report "any". ``proceeded`` is chosen so the derived quit
    indicator (``warned and not proceeded``) means "some warned attacker
    quit": it is ``False`` whenever any warned attacker backed off, and
    "any attacker proceeded" otherwise.
    """
    if len(attacks) == 1:
        return attacks[0]
    launched = [a for a in attacks if a.attacked]
    first = min(launched, key=lambda a: a.attack_time) if launched else attacks[0]
    quit_happened = any(a.warned and not a.proceeded for a in attacks)
    return TrialOutcome(
        attacked=any(a.attacked for a in attacks),
        attack_type=first.attack_type,
        attack_time=first.attack_time,
        warned=any(a.warned for a in attacks),
        proceeded=not quit_happened and any(a.proceeded for a in attacks),
        audited=any(a.audited for a in attacks),
        auditor_utility=float(sum(a.auditor_utility for a in attacks)),
        attacker_utility=float(sum(a.attacker_utility for a in attacks)),
        expected_auditor_utility=float(
            sum(a.expected_auditor_utility for a in attacks)
        ),
    )


def _attack_at_slot(
    game: SignalingAuditGame,
    time_of_day: float,
    context: CycleContext,
    attacker: RationalAttacker | QuantalResponseAttacker,
    rng: np.random.Generator,
    signaling_enabled: bool,
    robust_margin: float,
) -> TrialOutcome:
    """Play out the attacker's slot and score realized payoffs."""
    # The attacker's access itself raises an alert; process it to obtain
    # the equilibrium commitment he observes and best-responds to. (The
    # type fed to process_alert is the attacker's eventual choice below for
    # bookkeeping; the equilibrium marginals do not depend on it.)
    probe = game.process_alert(next(iter(context.payoffs)), time_of_day)

    # Duck-typed dispatch: attackers exposing a mixed strategy
    # (quantal, no-regret) get a sampled draw; pure-strategy attackers
    # (rational, Bayesian-learning) use their deterministic plan.
    if hasattr(attacker, "type_distribution"):
        distribution = attacker.type_distribution(probe.sse.thetas, context.payoffs)
        type_ids = sorted(distribution)
        probabilities = [distribution[t] for t in type_ids]
        attack_type: int | None = int(
            rng.choice(np.asarray(type_ids), p=probabilities)
        )
    else:
        plan = attacker.choose_type(probe.sse.thetas, context.payoffs)
        attack_type = plan.type_id
    if attack_type is None:
        return TrialOutcome(
            attacked=False, attack_type=None, attack_time=time_of_day,
            warned=False, proceeded=False, audited=False,
            auditor_utility=0.0, attacker_utility=0.0,
            expected_auditor_utility=0.0,
        )
    payoff = context.payoffs[attack_type]
    theta = probe.sse.theta_of(attack_type)

    if signaling_enabled:
        scheme = _scheme_for(theta, payoff, robust_margin)
        expected = scheme.auditor_utility(payoff)
        warned = bool(rng.random() < scheme.warning_probability)
        if warned:
            if hasattr(attacker, "proceed_probability"):
                proceeded = bool(
                    rng.random() < attacker.proceed_probability(scheme, payoff)
                )
            else:
                proceeded = attacker.proceeds_after_warning(scheme, payoff)
            if not proceeded:
                return TrialOutcome(
                    attacked=True, attack_type=attack_type,
                    attack_time=time_of_day, warned=True, proceeded=False,
                    audited=False, auditor_utility=0.0, attacker_utility=0.0,
                    expected_auditor_utility=expected,
                )
            audit_probability = scheme.audit_given_warning
        else:
            proceeded = True
            audit_probability = scheme.audit_given_silence
    else:
        expected = payoff.auditor_utility(theta)
        warned = False
        proceeded = True
        audit_probability = theta

    audited = bool(rng.random() < audit_probability)
    return TrialOutcome(
        attacked=True, attack_type=attack_type, attack_time=time_of_day,
        warned=warned, proceeded=proceeded, audited=audited,
        auditor_utility=payoff.u_dc if audited else payoff.u_du,
        attacker_utility=payoff.u_ac if audited else payoff.u_au,
        expected_auditor_utility=expected,
    )


def _scheme_for(
    theta: float, payoff, robust_margin: float
) -> SignalingScheme:
    if robust_margin > 0:
        from repro.extensions.robust import solve_robust_ossp

        return solve_robust_ossp(theta, payoff, robust_margin)
    return solve_ossp(theta, payoff)
