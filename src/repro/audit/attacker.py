"""Attacker models.

The paper's attacker is perfectly rational: he observes the auditor's
committed distribution, picks the alert type maximizing his expected
utility, attacks only when that utility is non-negative, and — under
signaling — quits whenever his conditional utility after a warning is
non-positive.

:class:`QuantalResponseAttacker` is the boundedly-rational relaxation the
paper flags as future work ("we assume that the attacker is perfectly
rational. Such a strong assumption may lead to unexpected loss in
practice"); it powers :mod:`repro.extensions.robust`.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.core.payoffs import PayoffMatrix
from repro.core.signaling import SignalingScheme


@dataclass(frozen=True)
class AttackPlan:
    """A (possibly degenerate) attack decision.

    ``type_id`` is ``None`` when the attacker prefers not to attack.
    """

    type_id: int | None
    expected_utility: float

    @property
    def attacks(self) -> bool:
        """Whether an attack is launched."""
        return self.type_id is not None


class RationalAttacker:
    """The paper's perfectly rational, fully informed attacker."""

    def choose_type(
        self,
        thetas: Mapping[int, float],
        payoffs: Mapping[int, PayoffMatrix],
    ) -> AttackPlan:
        """Best-response type under coverage ``thetas`` (or no attack).

        Attacks when the best type's expected utility is >= 0 (matching
        Theorem 2's case split).
        """
        if not thetas:
            raise ModelError("attacker needs at least one candidate type")
        best_type = None
        best_value = -math.inf
        for type_id in sorted(thetas):
            value = payoffs[type_id].attacker_utility(thetas[type_id])
            if value > best_value:
                best_type = type_id
                best_value = value
        if best_value < 0:
            return AttackPlan(type_id=None, expected_utility=0.0)
        return AttackPlan(type_id=best_type, expected_utility=best_value)

    def proceeds_after_warning(
        self, scheme: SignalingScheme, payoff: PayoffMatrix
    ) -> bool:
        """Whether the attacker ignores a warning and proceeds.

        He proceeds only when his conditional expected utility is strictly
        positive; the OSSP constrains it to be <= 0 (and keeps it *exactly*
        0 at the optimum), so under an OSSP this is always ``False``. The
        comparison uses a payoff-scaled tolerance so LP rounding dust never
        flips the boundary case.
        """
        value = scheme.attacker_proceed_utility_given_warning(payoff)
        return value > 1e-9 * max(1.0, abs(payoff.u_au))


class QuantalResponseAttacker:
    """Logit quantal-response (boundedly rational) attacker.

    ``rationality`` is the precision parameter: 0 is uniformly random,
    ``+inf`` recovers the rational best response. Utilities are rescaled by
    their magnitude range before exponentiation so the parameter is
    comparable across payoff scales.
    """

    def __init__(self, rationality: float = 1.0) -> None:
        if rationality < 0:
            raise ModelError(f"rationality must be non-negative, got {rationality}")
        self.rationality = float(rationality)

    def type_distribution(
        self,
        thetas: Mapping[int, float],
        payoffs: Mapping[int, PayoffMatrix],
    ) -> dict[int, float]:
        """Probability of attacking each type (logit response)."""
        if not thetas:
            raise ModelError("attacker needs at least one candidate type")
        type_ids = sorted(thetas)
        values = np.array(
            [payoffs[t].attacker_utility(thetas[t]) for t in type_ids]
        )
        scale = max(1.0, float(np.max(np.abs(values))))
        logits = self.rationality * values / scale
        logits -= logits.max()
        weights = np.exp(logits)
        probabilities = weights / weights.sum()
        return dict(zip(type_ids, (float(p) for p in probabilities)))

    def proceed_probability(
        self, scheme: SignalingScheme, payoff: PayoffMatrix
    ) -> float:
        """Probability of proceeding after a warning (logistic response).

        At the OSSP boundary (conditional utility exactly 0) a boundedly
        rational attacker proceeds half the time — the robustness gap the
        robust extension closes by enforcing a strict margin.
        """
        value = scheme.attacker_proceed_utility_given_warning(payoff)
        scale = max(1.0, abs(payoff.u_au))
        # Clamp the exponent: beyond +-60 the logistic saturates to 0/1
        # anyway, and math.exp overflows around 710.
        exponent = min(60.0, max(-60.0, -self.rationality * value / scale))
        return 1.0 / (1.0 + math.exp(exponent))

    def auditor_expected_utility(
        self,
        thetas: Mapping[int, float],
        payoffs: Mapping[int, PayoffMatrix],
    ) -> float:
        """Auditor's expected utility against this attacker (no signaling)."""
        distribution = self.type_distribution(thetas, payoffs)
        return sum(
            probability * payoffs[t].auditor_utility(thetas[t])
            for t, probability in distribution.items()
        )
