"""Driving one policy through one audit cycle."""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ExperimentError
from repro.audit.metrics import CycleResult, UtilityPoint
from repro.audit.policies import AuditPolicy, CycleContext
from repro.logstore.store import AlertRecord


def run_cycle(
    policy: AuditPolicy,
    alerts: Sequence[AlertRecord],
    context: CycleContext,
    day: int | None = None,
) -> CycleResult:
    """Feed a day's alerts (chronological) through ``policy``.

    Returns the per-alert expected-utility series along with budget and
    latency traces.
    """
    if not alerts:
        raise ExperimentError("cannot run a cycle over an empty alert stream")
    days = {alert.day for alert in alerts}
    if len(days) > 1:
        raise ExperimentError(f"alert stream spans multiple days: {sorted(days)}")
    times = [alert.time_of_day for alert in alerts]
    if times != sorted(times):
        raise ExperimentError("alert stream must be chronological")

    policy.begin_cycle(context)
    points: list[UtilityPoint] = []
    latencies: list[float] = []
    warnings_sent = 0
    budget_after = context.budget
    for alert in alerts:
        outcome = policy.handle_alert(alert)
        points.append(
            UtilityPoint(
                time_of_day=outcome.time_of_day,
                value=outcome.expected_utility,
                type_id=outcome.type_id,
                theta=outcome.theta,
            )
        )
        latencies.append(outcome.solve_seconds)
        if outcome.warned:
            warnings_sent += 1
        budget_after = outcome.budget_after
    return CycleResult(
        policy=policy.name,
        day=day if day is not None else next(iter(days)),
        points=tuple(points),
        budget_initial=context.budget,
        budget_final=budget_after,
        solve_seconds=tuple(latencies),
        warnings_sent=warnings_sent,
    )
