"""Per-alert utility time series and summaries."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError


@dataclass(frozen=True)
class UtilityPoint:
    """One per-alert sample of the auditor's expected utility.

    ``theta`` records the marginal audit probability of the alert's type at
    decision time — the coverage a would-be attacker faced (used by the
    rollback ablation's late-attacker analysis).
    """

    time_of_day: float
    value: float
    type_id: int
    theta: float = 0.0


@dataclass(frozen=True)
class CycleResult:
    """Everything one policy produced over one audit cycle (day).

    ``points`` holds the per-alert expected utilities in arrival order —
    the series plotted in Figures 2 and 3. ``solve_seconds`` holds the
    per-alert optimization latencies (the paper's runtime experiment).
    """

    policy: str
    day: int
    points: tuple[UtilityPoint, ...]
    budget_initial: float
    budget_final: float
    solve_seconds: tuple[float, ...] = ()
    warnings_sent: int = 0

    @property
    def times(self) -> np.ndarray:
        """Arrival times of the scored alerts."""
        return np.array([p.time_of_day for p in self.points])

    @property
    def values(self) -> np.ndarray:
        """Per-alert expected-utility values."""
        return np.array([p.value for p in self.points])

    @property
    def thetas(self) -> np.ndarray:
        """Per-alert marginal audit probabilities (alert's own type)."""
        return np.array([p.theta for p in self.points])

    def mean_utility(self) -> float:
        """Average per-alert auditor expected utility over the day."""
        if not self.points:
            raise ExperimentError("cycle produced no scored alerts")
        return float(np.mean(self.values))

    def final_utility(self) -> float:
        """Expected utility at the last scored alert of the day."""
        if not self.points:
            raise ExperimentError("cycle produced no scored alerts")
        return float(self.points[-1].value)

    def min_utility(self) -> float:
        """Worst per-alert expected utility of the day."""
        if not self.points:
            raise ExperimentError("cycle produced no scored alerts")
        return float(np.min(self.values))


@dataclass(frozen=True)
class OutcomeSummary:
    """Aggregate of one policy across several test days."""

    policy: str
    n_days: int
    n_alerts: int
    mean_utility: float
    mean_final_utility: float
    worst_utility: float
    mean_solve_seconds: float


def summarize(results: Sequence[CycleResult]) -> OutcomeSummary:
    """Aggregate same-policy cycle results across test days."""
    if not results:
        raise ExperimentError("nothing to summarize")
    names = {result.policy for result in results}
    if len(names) != 1:
        raise ExperimentError(f"mixed policies in summary: {sorted(names)}")
    all_values = np.concatenate([result.values for result in results])
    latencies = [s for result in results for s in result.solve_seconds]
    return OutcomeSummary(
        policy=results[0].policy,
        n_days=len(results),
        n_alerts=int(all_values.size),
        mean_utility=float(np.mean(all_values)),
        mean_final_utility=float(np.mean([r.final_utility() for r in results])),
        worst_utility=float(np.min(all_values)),
        mean_solve_seconds=float(np.mean(latencies)) if latencies else 0.0,
    )
