"""Audit policies: OSSP, online SSE, offline SSE, and naive baselines.

A policy is driven through one audit cycle (day) at a time:
:meth:`~AuditPolicy.begin_cycle` hands it the cycle's context (training
history, budget, payoffs), then :meth:`~AuditPolicy.handle_alert` is called
once per arriving alert and returns the auditor's expected utility for that
alert — the quantity plotted in Figures 2 and 3.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.errors import ExperimentError
from repro.core.budget import BudgetLedger
from repro.core.game import (
    SAGConfig,
    SCOPE_BEST_RESPONSE,
    SignalingAuditGame,
)
from repro.core.offline import solve_offline_sse
from repro.core.payoffs import PayoffMatrix
from repro.core.sse import SSESolution
from repro.engine.cache import SSESolutionCache
from repro.logstore.store import AlertRecord
from repro.solvers.registry import DEFAULT_BACKEND
from repro.stats.estimator import (
    DEFAULT_ROLLBACK_THRESHOLD,
    FutureAlertEstimator,
    RollbackEstimator,
)
from repro.stats.poisson import PoissonReciprocalMoment


@dataclass(frozen=True)
class CycleContext:
    """Everything a policy may use to prepare for one audit cycle.

    Attributes
    ----------
    history:
        Per-type, per-historical-day sorted arrival times (the estimator
        input built from the preceding 41 days).
    budget:
        The cycle's total audit budget.
    payoffs, costs:
        Per-type payoff matrices and audit costs.
    rollback_threshold / rollback_enabled:
        Knowledge-rollback configuration (paper Section 5).
    backend:
        Solver backend name (``"scipy"``, ``"simplex"``, or ``"analytic"``).
    seed:
        Seed for the policy's private signal-sampling generator.
    budget_charging:
        ``"conditional"`` (paper-faithful) or ``"expected"`` — see
        :mod:`repro.core.game`.
    sse_cache:
        Optional :class:`~repro.engine.cache.SSESolutionCache` shared by
        the game-backed policies running under this context.
    fp_iterations:
        Proposal-dynamics iteration budget for the ``"fictitious_play"``
        backend (``None`` = backend default); ignored by other backends.
    """

    history: Mapping[int, list[np.ndarray]]
    budget: float
    payoffs: Mapping[int, PayoffMatrix]
    costs: Mapping[int, float]
    rollback_threshold: float = DEFAULT_ROLLBACK_THRESHOLD
    rollback_enabled: bool = True
    backend: str = DEFAULT_BACKEND
    seed: int = 0
    budget_charging: str = "conditional"
    sse_cache: SSESolutionCache | None = None
    fp_iterations: int | None = None

    def build_estimator(self) -> RollbackEstimator:
        """Fresh rollback estimator over this context's history."""
        return RollbackEstimator(
            FutureAlertEstimator(self.history),
            threshold=self.rollback_threshold,
            enabled=self.rollback_enabled,
        )

    def daily_means(self) -> dict[int, float]:
        """Historical mean daily count per type (offline-SSE input)."""
        return {
            type_id: float(np.mean([day.size for day in days]))
            for type_id, days in self.history.items()
        }


@dataclass(frozen=True)
class AlertOutcome:
    """A policy's reaction to one alert."""

    time_of_day: float
    type_id: int
    expected_utility: float
    theta: float
    audit_probability: float
    warned: bool | None
    budget_after: float
    solve_seconds: float = 0.0


class AuditPolicy(Protocol):
    """Interface every audit policy implements."""

    name: str

    def begin_cycle(self, context: CycleContext) -> None:
        """Prepare internal state for a fresh day."""
        ...

    def handle_alert(self, alert: AlertRecord) -> AlertOutcome:
        """React to one arriving alert."""
        ...


class _GameBackedPolicy:
    """Shared implementation for the two online policies (OSSP / SSE).

    The policy owns one :class:`PoissonReciprocalMoment` memo for its whole
    lifetime — the per-rate series sums survive across cycles instead of
    being recomputed from an empty table every day.
    """

    name = "game"
    _signaling_enabled = True

    def __init__(
        self,
        scope: str = SCOPE_BEST_RESPONSE,
        signaling_method: str = "closed_form",
        solution_cache: SSESolutionCache | None = None,
    ) -> None:
        self._scope = scope
        self._signaling_method = signaling_method
        self._solution_cache = solution_cache
        self._moment = PoissonReciprocalMoment()
        self._game: SignalingAuditGame | None = None

    def begin_cycle(self, context: CycleContext) -> None:
        config = SAGConfig(
            payoffs=context.payoffs,
            costs=context.costs,
            budget=context.budget,
            backend=context.backend,
            signaling_method=self._signaling_method,
            signaling_enabled=self._signaling_enabled,
            scope=self._scope,
            budget_charging=context.budget_charging,
        )
        cache = (
            self._solution_cache
            if self._solution_cache is not None
            else context.sse_cache
        )
        self._game = SignalingAuditGame(
            config,
            context.build_estimator(),
            rng=np.random.default_rng(context.seed),
            moment=self._moment,
            solution_cache=cache,
        )

    def handle_alert(self, alert: AlertRecord) -> AlertOutcome:
        if self._game is None:
            raise ExperimentError(f"{self.name}: begin_cycle was never called")
        decision = self._game.process_alert(alert.type_id, alert.time_of_day)
        return AlertOutcome(
            time_of_day=alert.time_of_day,
            type_id=alert.type_id,
            expected_utility=decision.game_value,
            theta=decision.theta,
            audit_probability=decision.audit_probability,
            warned=decision.warned if decision.signaling_applied else None,
            budget_after=decision.budget_after,
            solve_seconds=decision.solve_seconds,
        )


class OSSPPolicy(_GameBackedPolicy):
    """The paper's approach: online SSE marginals + optimal signaling."""

    name = "OSSP"
    _signaling_enabled = True


class OnlineSSEPolicy(_GameBackedPolicy):
    """Online SSE without signaling (the paper's "online SSE" baseline)."""

    name = "online SSE"
    _signaling_enabled = False


class OfflineSSEPolicy:
    """Whole-cycle SSE computed once from historical daily volumes.

    The paper plots this as a flat line: the equilibrium is computed for the
    full day, so the auditor's expected utility is identical for every
    alert regardless of when it arrives.
    """

    name = "offline SSE"

    def __init__(self) -> None:
        self._solution: SSESolution | None = None
        self._payoffs: Mapping[int, PayoffMatrix] | None = None
        self._ledger: BudgetLedger | None = None
        self._costs: Mapping[int, float] = {}

    def begin_cycle(self, context: CycleContext) -> None:
        self._solution = solve_offline_sse(
            context.budget,
            context.daily_means(),
            context.payoffs,
            context.costs,
            backend=context.backend,
        )
        self._payoffs = context.payoffs
        self._costs = context.costs
        self._ledger = BudgetLedger(context.budget)

    def handle_alert(self, alert: AlertRecord) -> AlertOutcome:
        if self._solution is None or self._ledger is None or self._payoffs is None:
            raise ExperimentError(f"{self.name}: begin_cycle was never called")
        theta = self._solution.theta_of(alert.type_id)
        cost = self._costs[alert.type_id]
        affordable = (
            theta
            if self._ledger.can_afford(theta * cost)
            else self._ledger.remaining / cost
        )
        self._ledger.spend(affordable * cost, time_of_day=alert.time_of_day)
        return AlertOutcome(
            time_of_day=alert.time_of_day,
            type_id=alert.type_id,
            # The offline equilibrium value: flat across the whole day.
            expected_utility=self._solution.effective_auditor_utility,
            theta=theta,
            audit_probability=affordable,
            warned=None,
            budget_after=self._ledger.remaining,
        )


class UniformRandomPolicy:
    """Non-strategic baseline: spread the budget evenly over expected alerts.

    Every alert is audited with probability
    ``remaining_budget / (cost * expected_remaining_alerts)`` (capped at 1).
    Included as a sanity floor for the benchmark comparisons; not part of
    the paper's evaluated set.
    """

    name = "uniform"

    def __init__(self) -> None:
        self._estimator: RollbackEstimator | None = None
        self._ledger: BudgetLedger | None = None
        self._payoffs: Mapping[int, PayoffMatrix] = {}
        self._costs: Mapping[int, float] = {}

    def begin_cycle(self, context: CycleContext) -> None:
        self._estimator = context.build_estimator()
        self._ledger = BudgetLedger(context.budget)
        self._payoffs = context.payoffs
        self._costs = context.costs

    def handle_alert(self, alert: AlertRecord) -> AlertOutcome:
        if self._estimator is None or self._ledger is None:
            raise ExperimentError(f"{self.name}: begin_cycle was never called")
        self._estimator.observe_alert(alert.time_of_day)
        expected_remaining = sum(
            self._estimator.remaining_means(alert.time_of_day).values()
        )
        cost = self._costs[alert.type_id]
        denominator = max(1.0, expected_remaining)
        theta = min(1.0, self._ledger.remaining / (cost * denominator))
        self._ledger.spend(theta * cost, time_of_day=alert.time_of_day)
        payoff = self._payoffs[alert.type_id]
        return AlertOutcome(
            time_of_day=alert.time_of_day,
            type_id=alert.type_id,
            expected_utility=payoff.auditor_utility(theta),
            theta=theta,
            audit_probability=theta,
            warned=None,
            budget_after=self._ledger.remaining,
        )
