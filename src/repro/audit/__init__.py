"""Audit-cycle evaluation substrate.

Runs audit policies (OSSP, online SSE, offline SSE, naive baselines) over
alert streams, reproducing the paper's real-time evaluation protocol:
rolling 41-day training histories, one test day per group, per-alert
expected-utility time series.
"""

from repro.audit.metrics import CycleResult, OutcomeSummary, UtilityPoint, summarize
from repro.audit.policies import (
    AuditPolicy,
    AlertOutcome,
    CycleContext,
    OfflineSSEPolicy,
    OnlineSSEPolicy,
    OSSPPolicy,
    UniformRandomPolicy,
)
from repro.audit.cycle import run_cycle
from repro.audit.evaluation import (
    EvaluationHarness,
    TrainTestSplit,
    rolling_splits,
)
from repro.audit.attacker import (
    AttackPlan,
    QuantalResponseAttacker,
    RationalAttacker,
)
from repro.audit.montecarlo import (
    MonteCarloResult,
    TIMING_LATE,
    TIMING_UNIFORM,
    run_attacker_in_the_loop,
)

__all__ = [
    "CycleResult",
    "OutcomeSummary",
    "UtilityPoint",
    "summarize",
    "AuditPolicy",
    "AlertOutcome",
    "CycleContext",
    "OfflineSSEPolicy",
    "OnlineSSEPolicy",
    "OSSPPolicy",
    "UniformRandomPolicy",
    "run_cycle",
    "EvaluationHarness",
    "TrainTestSplit",
    "rolling_splits",
    "AttackPlan",
    "QuantalResponseAttacker",
    "RationalAttacker",
    "MonteCarloResult",
    "TIMING_LATE",
    "TIMING_UNIFORM",
    "run_attacker_in_the_loop",
]
