"""The paper's evaluation protocol: rolling train/test groups.

From 56 continuous days, the paper constructs 15 groups, each using 41
consecutive days as history and the following day for testing.
:func:`rolling_splits` reproduces that construction for any day range, and
:class:`EvaluationHarness` runs a set of policies over every group.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.audit.cycle import run_cycle
from repro.audit.metrics import CycleResult
from repro.audit.policies import AuditPolicy, CycleContext
from repro.core.payoffs import PayoffMatrix
from repro.engine.cache import SSESolutionCache
from repro.logstore.store import AlertLogStore
from repro.solvers.registry import DEFAULT_BACKEND
from repro.stats.estimator import DEFAULT_ROLLBACK_THRESHOLD

#: Training-window length used throughout the paper's evaluation.
PAPER_TRAINING_DAYS = 41


@dataclass(frozen=True)
class TrainTestSplit:
    """One evaluation group: a training window plus its test day."""

    train_days: tuple[int, ...]
    test_day: int

    def __post_init__(self) -> None:
        if not self.train_days:
            raise ExperimentError("a split needs at least one training day")
        if self.test_day in self.train_days:
            raise ExperimentError("test day must not be part of training")


def rolling_splits(
    days: Sequence[int],
    window: int = PAPER_TRAINING_DAYS,
) -> list[TrainTestSplit]:
    """All ``window``-train / next-day-test groups over consecutive ``days``.

    With the paper's 56 days and a 41-day window this yields exactly 15
    groups.
    """
    ordered = sorted(days)
    if len(ordered) <= window:
        raise ExperimentError(
            f"need more than {window} days for a rolling split, got {len(ordered)}"
        )
    splits = []
    for end in range(window, len(ordered)):
        splits.append(
            TrainTestSplit(
                train_days=tuple(ordered[end - window : end]),
                test_day=ordered[end],
            )
        )
    return splits


class EvaluationHarness:
    """Runs audit policies over the rolling groups of an alert store.

    ``backend`` selects the per-alert solver for every game-backed policy
    (``"scipy"``, ``"simplex"``, or the vectorized ``"analytic"`` fast
    path); ``use_engine_cache`` additionally shares one exact-mode
    :class:`~repro.engine.cache.SSESolutionCache` per evaluation group, so
    policies replaying the same test day hit the cache instead of
    re-solving identical states.
    """

    def __init__(
        self,
        store: AlertLogStore,
        payoffs: Mapping[int, PayoffMatrix],
        costs: Mapping[int, float],
        budget: float,
        type_ids: Iterable[int] | None = None,
        rollback_threshold: float = DEFAULT_ROLLBACK_THRESHOLD,
        rollback_enabled: bool = True,
        backend: str = DEFAULT_BACKEND,
        seed: int = 0,
        budget_charging: str = "conditional",
        use_engine_cache: bool = False,
        fp_iterations: int | None = None,
    ) -> None:
        self._store = store
        self._payoffs = dict(payoffs)
        self._costs = dict(costs)
        self._budget = float(budget)
        self._type_ids = (
            tuple(type_ids) if type_ids is not None else tuple(sorted(self._payoffs))
        )
        missing = set(self._type_ids) - set(self._payoffs)
        if missing:
            raise ExperimentError(f"no payoffs for requested types: {sorted(missing)}")
        self._rollback_threshold = rollback_threshold
        self._rollback_enabled = rollback_enabled
        self._backend = backend
        self._seed = seed
        self._budget_charging = budget_charging
        self._use_engine_cache = use_engine_cache
        self._fp_iterations = fp_iterations

    def splits(self, window: int = PAPER_TRAINING_DAYS) -> list[TrainTestSplit]:
        """Rolling groups over every day in the store."""
        return rolling_splits(self._store.days, window=window)

    def context_for(self, split: TrainTestSplit) -> CycleContext:
        """Build the cycle context (history, budget, payoffs) for a group."""
        history = self._store.times_by_type(split.train_days, self._type_ids)
        return CycleContext(
            history=history,
            budget=self._budget,
            payoffs=self._payoffs,
            costs=self._costs,
            rollback_threshold=self._rollback_threshold,
            rollback_enabled=self._rollback_enabled,
            backend=self._backend,
            seed=self._seed + split.test_day,
            budget_charging=self._budget_charging,
            sse_cache=SSESolutionCache() if self._use_engine_cache else None,
            fp_iterations=self._fp_iterations,
        )

    def test_alerts(self, split: TrainTestSplit):
        """The test day's chronological alerts, restricted to known types."""
        return [
            alert
            for alert in self._store.day_alerts(split.test_day)
            if alert.type_id in self._type_ids
        ]

    def run_group(
        self,
        split: TrainTestSplit,
        policies: Sequence[AuditPolicy],
    ) -> dict[str, CycleResult]:
        """Run every policy over one group's test day."""
        context = self.context_for(split)
        alerts = self.test_alerts(split)
        if not alerts:
            raise ExperimentError(f"test day {split.test_day} has no alerts")
        results = {}
        for policy in policies:
            results[policy.name] = run_cycle(
                policy, alerts, context, day=split.test_day
            )
        return results

    def run_all(
        self,
        policies: Sequence[AuditPolicy],
        window: int = PAPER_TRAINING_DAYS,
        max_groups: int | None = None,
    ) -> dict[int, dict[str, CycleResult]]:
        """Run every policy over every (or the first ``max_groups``) group."""
        splits = self.splits(window=window)
        if max_groups is not None:
            splits = splits[:max_groups]
        return {
            split.test_day: self.run_group(split, policies) for split in splits
        }
