"""Sharded parallel Monte Carlo orchestration.

:class:`ParallelRunner` evaluates a list of scenarios by slicing each
scenario's Monte Carlo trials into contiguous shards and fanning the
shards out over a ``ProcessPoolExecutor``. Parallelism never changes
results, by construction:

* the scenario's master seed expands into per-trial root seeds
  (:func:`repro.audit.montecarlo.spawn_trial_seeds`) **before** sharding;
  a shard is just a contiguous slice of that list, and every trial derives
  its own RNG streams from its root seed alone;
* the evaluation world (alerts, cycle context) is deterministic in the
  spec and built once per scenario — grouped by dataset so shared stores
  are simulated once and distinct ones concurrently — then shipped to
  shard workers pickled, so shards replay byte-identical inputs;
* each worker uses its *own* solution cache (exact mode shared across its
  trials, or per-trial when quantized), so no cross-process state exists
  to leak between shards;
* merging concatenates shard outcomes in shard order and recomputes the
  aggregates through the single
  :meth:`~repro.audit.montecarlo.MonteCarloResult.from_outcomes` code
  path.

Consequently ``workers=N`` is bit-identical to ``workers=1`` for any
``N`` — the property ``repro suite`` exposes and the equivalence tests
pin down. Engine-side accounting (solves, cache hits, wall time) *does*
depend on sharding — per-worker caches duplicate warm-up work — which is
why :class:`SuiteResult` keeps it separate from the deterministic results
payload.
"""

from __future__ import annotations

import time as _time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Sequence

from repro.errors import ExperimentError
from repro.audit.montecarlo import (
    MonteCarloResult,
    TrialOutcome,
    run_trials,
    spawn_trial_seeds,
)
from repro.audit.policies import CycleContext
from repro.engine.cache import CacheStats, SSESolutionCache
from repro.engine.stream import EngineStats
from repro.learning.loop import LearningCurveResult, run_learning_loop
from repro.logstore.store import AlertRecord
from repro.scenarios.spec import (
    CACHE_PER_TRIAL,
    CACHE_SHARED,
    ScenarioSpec,
)


@dataclass(frozen=True)
class _ShardTask:
    """One worker's slice of one scenario (picklable)."""

    spec: ScenarioSpec
    alerts: tuple[AlertRecord, ...]
    context: CycleContext
    trial_seeds: tuple[int, ...]


@dataclass(frozen=True)
class _ShardResult:
    """A shard's ordered outcomes plus its engine-side accounting."""

    outcomes: tuple[TrialOutcome, ...]
    stats: EngineStats


def _execute_shard(task: _ShardTask) -> _ShardResult:
    """Run one shard's trials in order (top-level for pickling).

    Trials run through :func:`repro.audit.montecarlo.run_trials` — the
    same code path serial runs use — with the cache policy supplied
    around it: one shared exact-mode cache for the shard, a private
    (possibly quantized) cache per trial, or none.
    """
    spec = task.spec
    # Per-trial caches are snapshotted and dropped as soon as the next
    # trial starts — only their three counters survive the trial, so a
    # long shard never accumulates dead caches' solution objects.
    stats_parts: list[CacheStats] = []
    current: list[SSESolutionCache] = []
    solution_cache = cache_factory = None
    if spec.cache_mode == CACHE_SHARED:
        solution_cache = SSESolutionCache()
    elif spec.cache_mode == CACHE_PER_TRIAL:
        def cache_factory() -> SSESolutionCache:
            if current:
                stats_parts.append(current.pop().stats)
            cache = SSESolutionCache(
                budget_step=spec.cache_budget_step,
                rate_step=spec.cache_rate_step,
                error_budget=spec.cache_error_budget,
            )
            current.append(cache)
            return cache

    started = _time.perf_counter()
    outcomes = run_trials(
        task.alerts,
        task.context,
        task.trial_seeds,
        timing=spec.timing,
        signaling_enabled=spec.signaling_enabled,
        # The spec method is itself the zero-arg factory: a fresh attacker
        # per trial keeps stateful (learning) attackers shard-invariant and
        # is a no-op for the stateless models.
        attacker_factory=spec.attacker_model,
        robust_margin=spec.robust_margin,
        solution_cache=solution_cache,
        cache_factory=cache_factory,
        n_attackers=spec.n_attackers,
    )
    wall = _time.perf_counter() - started

    if solution_cache is not None:
        stats_parts.append(solution_cache.stats)
    if current:
        stats_parts.append(current.pop().stats)
    cache_stats = CacheStats.merge(stats_parts)
    alerts_processed = len(task.trial_seeds) * len(task.alerts)
    solves = cache_stats.misses if stats_parts else alerts_processed
    return _ShardResult(
        outcomes=tuple(outcomes),
        stats=EngineStats(
            alerts=alerts_processed,
            sse_solves=solves,
            cache_hits=cache_stats.hits,
            cache_entries=cache_stats.entries,
            wall_seconds=wall,
            backend=spec.backend,
        ),
    )


def _build_worlds(
    specs: tuple[ScenarioSpec, ...],
) -> list[tuple[tuple[AlertRecord, ...], CycleContext]]:
    """Build the evaluation worlds of specs sharing one dataset.

    Top-level so the runner can dispatch whole dataset groups to pool
    workers: specs in one group hit the worker's memoized store after the
    first build, while distinct datasets build in parallel across workers.
    """
    worlds = []
    for spec in specs:
        alerts, context, _split = spec.build_world()
        worlds.append((tuple(alerts), context))
    return worlds


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's merged Monte Carlo outcome plus run accounting.

    ``montecarlo`` (and the spec) are deterministic — identical for any
    worker count. ``engine`` and ``n_shards`` describe *how* the run was
    executed and legitimately vary with sharding.
    """

    spec: ScenarioSpec
    montecarlo: MonteCarloResult
    engine: EngineStats
    n_shards: int
    learning: LearningCurveResult | None = None

    def deterministic_dict(self) -> dict[str, Any]:
        """The shard-count-invariant payload (spec + merged Monte Carlo).

        Learning-attacker scenarios add a ``learning`` section: the
        multi-cycle curve is computed once in the parent process against
        the scenario's deterministic world, so it is identical for any
        worker count and belongs in the bit-compared payload.
        """
        payload = {
            "spec": self.spec.to_dict(),
            "montecarlo": self.montecarlo.to_dict(),
        }
        if self.learning is not None:
            payload["learning"] = self.learning.to_dict()
        return payload

    def run_dict(self) -> dict[str, Any]:
        """Execution accounting (varies with sharding and machine load)."""
        return {
            "name": self.spec.name,
            "n_shards": self.n_shards,
            "engine": {
                "backend": self.engine.backend,
                "alerts": self.engine.alerts,
                "sse_solves": self.engine.sse_solves,
                "cache_hits": self.engine.cache_hits,
                "cache_entries": self.engine.cache_entries,
                # Whole-trial processing time summed over shards (stream
                # replay + solves + lotteries), not solver time alone.
                "trial_wall_seconds": self.engine.wall_seconds,
            },
        }


@dataclass(frozen=True)
class SuiteResult:
    """All scenario results plus suite-level execution metadata."""

    results: tuple[ScenarioResult, ...]
    workers: int
    wall_seconds: float

    def scenarios_payload(self) -> list[dict[str, Any]]:
        """The deterministic section: byte-identical for any worker count."""
        return [result.deterministic_dict() for result in self.results]

    def to_dict(self) -> dict[str, Any]:
        """Full JSON payload: deterministic ``scenarios`` + a ``run`` section.

        Consumers comparing runs (the equivalence tests, ``bench_suite``)
        compare ``scenarios`` only; ``run`` carries worker count, wall
        clock, and per-scenario engine accounting.
        """
        return {
            "scenarios": self.scenarios_payload(),
            "run": {
                "workers": self.workers,
                "wall_seconds": self.wall_seconds,
                "scenarios": [result.run_dict() for result in self.results],
            },
        }


class ParallelRunner:
    """Shards scenario trials across a process pool, merging deterministically.

    Parameters
    ----------
    workers:
        Process count. ``1`` runs everything inline (no pool) — the serial
        reference the parallel runs are guaranteed to match.
    shards_per_scenario:
        How many slices to cut each scenario's trials into (capped at the
        trial count). Defaults to ``workers``; more shards than workers
        simply queue, which helps when scenarios have uneven trial counts.
    """

    def __init__(self, workers: int = 1, shards_per_scenario: int | None = None) -> None:
        if workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {workers}")
        if shards_per_scenario is not None and shards_per_scenario < 1:
            raise ExperimentError(
                f"shards_per_scenario must be >= 1, got {shards_per_scenario}"
            )
        self.workers = workers
        self.shards_per_scenario = shards_per_scenario

    def run(self, specs: Sequence[ScenarioSpec]) -> SuiteResult:
        """Evaluate every scenario; results arrive in input order."""
        specs = list(specs)
        if not specs:
            raise ExperimentError("no scenarios to run")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ExperimentError(f"duplicate scenario names: {duplicates}")

        started = _time.perf_counter()
        if self.workers == 1:
            worlds = _build_worlds(tuple(specs))
            tasks_per_scenario = self._shard_tasks(specs, worlds)
            shard_results = [
                [_execute_shard(task) for task in tasks]
                for tasks in tasks_per_scenario
            ]
        else:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                # Phase 1 — build worlds on the pool, one task per distinct
                # dataset: specs sharing a dataset reuse the worker's
                # memoized store, while distinct datasets (seed / n_days /
                # volume / diurnal / alert-source sweeps) build concurrently.
                groups: dict[tuple, list[int]] = {}
                for index, spec in enumerate(specs):
                    key = (
                        spec.seed, spec.n_days,
                        spec.normal_daily_mean, spec.diurnal,
                        spec.source, spec.source_path,
                    )
                    groups.setdefault(key, []).append(index)
                group_futures = {
                    key: pool.submit(
                        _build_worlds, tuple(specs[i] for i in indices)
                    )
                    for key, indices in groups.items()
                }
                worlds: list = [None] * len(specs)
                for key, indices in groups.items():
                    for index, world in zip(indices, group_futures[key].result()):
                        worlds[index] = world

                # Phase 2 — shard the trials over the same pool.
                tasks_per_scenario = self._shard_tasks(specs, worlds)
                futures = [
                    [pool.submit(_execute_shard, task) for task in tasks]
                    for tasks in tasks_per_scenario
                ]
                shard_results = [
                    [future.result() for future in scenario_futures]
                    for scenario_futures in futures
                ]

        results = []
        for spec, world, tasks, shards in zip(
            specs, worlds, tasks_per_scenario, shard_results
        ):
            # Concatenating shard outcomes in shard order reproduces the
            # serial trial order, so one from_outcomes pass over the
            # concatenation IS the merge (MonteCarloResult.merge does the
            # same; aggregating per shard first would be wasted work).
            merged = MonteCarloResult.from_outcomes(
                timing=spec.timing,
                outcomes=[o for shard in shards for o in shard.outcomes],
                trial_seeds=[s for task in tasks for s in task.trial_seeds],
                master_seed=spec.seed,
            )
            engine = EngineStats.merge([shard.stats for shard in shards])
            learning = None
            if spec.learning_attacker:
                # The multi-cycle learning curve runs in the parent — never
                # on the pool — so its payload is identical for any worker
                # count, like everything else in deterministic_dict().
                alerts, context = world
                learning = run_learning_loop(
                    spec.attacker_model(),
                    alerts,
                    context,
                    cycles=spec.learning_cycles,
                    signaling_enabled=spec.signaling_enabled,
                )
                engine = replace(engine, **learning.summary())
            results.append(
                ScenarioResult(
                    spec=spec,
                    montecarlo=merged,
                    engine=engine,
                    n_shards=len(shards),
                    learning=learning,
                )
            )
        return SuiteResult(
            results=tuple(results),
            workers=self.workers,
            wall_seconds=_time.perf_counter() - started,
        )

    def _shard_tasks(
        self,
        specs: Sequence[ScenarioSpec],
        worlds: Sequence[tuple[tuple[AlertRecord, ...], CycleContext]],
    ) -> list[list[_ShardTask]]:
        """Cut every scenario's trial seeds into contiguous shard tasks."""
        tasks_per_scenario = []
        for spec, (alerts, context) in zip(specs, worlds):
            seeds = spawn_trial_seeds(spec.seed, spec.n_trials)
            n_shards = min(
                self.shards_per_scenario or self.workers, spec.n_trials
            )
            tasks_per_scenario.append(
                [
                    _ShardTask(
                        spec=spec,
                        alerts=alerts,
                        context=context,
                        trial_seeds=chunk,
                    )
                    for chunk in _contiguous_chunks(seeds, n_shards)
                ]
            )
        return tasks_per_scenario


def _contiguous_chunks(
    seeds: Sequence[int], n_chunks: int
) -> list[tuple[int, ...]]:
    """Split ``seeds`` into ``n_chunks`` contiguous, order-preserving slices.

    The first ``len % n`` chunks get one extra element (numpy
    ``array_split`` semantics); concatenating the chunks reproduces the
    input exactly, which is what makes shard merging order-stable.
    """
    n = len(seeds)
    if n_chunks < 1 or n_chunks > n:
        raise ExperimentError(
            f"cannot cut {n} trials into {n_chunks} shards"
        )
    base, extra = divmod(n, n_chunks)
    chunks = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(tuple(seeds[start : start + size]))
        start += size
    return chunks
