"""Declarative, serializable scenario specifications.

A :class:`ScenarioSpec` names everything needed to reproduce one
Monte Carlo evaluation world — population volume, diurnal alert profile,
attacker model, budget regime, solver backend, cache policy — as plain
JSON-compatible values. Specs are the unit the scenario suite sweeps
(:mod:`repro.scenarios.matrix`), shards (:mod:`repro.scenarios.runner`),
and persists in result files, so every field is a scalar or a string
naming a registered object; nothing in a spec holds live state.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ConfigError, ExperimentError
from repro.audit.attacker import QuantalResponseAttacker, RationalAttacker
from repro.learning.attackers import BayesianLearningAttacker, NoRegretAttacker
from repro.audit.evaluation import EvaluationHarness, TrainTestSplit
from repro.audit.montecarlo import TIMING_LATE, TIMING_UNIFORM
from repro.audit.policies import CycleContext
from repro.core.payoffs import PayoffMatrix
from repro.experiments.config import (
    MULTI_TYPE_BUDGET,
    SINGLE_TYPE_BUDGET,
    SINGLE_TYPE_ID,
    TABLE2_PAYOFFS,
    paper_costs,
)
from repro.experiments.dataset import build_alert_store
from repro.ingest.registry import (
    SOURCE_SIMULATOR,
    available_sources,
    store_for,
)
from repro.logstore.store import AlertLogStore, AlertRecord
from repro.stats.diurnal import PROFILE_FACTORIES

#: Payoff settings (which slice of Table 2 the scenario plays).
SETTING_SINGLE = "single"   # Figure 2 world: type 1 only
SETTING_MULTI = "multi"     # Figure 3 world: all seven types
SETTINGS = (SETTING_SINGLE, SETTING_MULTI)

#: Attacker models.
ATTACKER_RATIONAL = "rational"   # the paper's perfectly rational attacker
ATTACKER_QUANTAL = "quantal"     # boundedly rational (logit) attacker
ATTACKER_ROBUST = "robust"       # quantal attacker vs margin-hardened OSSP
ATTACKER_MULTI = "multi"         # m independent symmetric rational attackers
ATTACKER_BAYESIAN = "bayesian_learning"  # Beta-posterior coverage learner
ATTACKER_NO_REGRET = "no_regret"         # Hedge over attack types
#: Attackers that adapt across cycles (see :mod:`repro.learning`). The
#: suite runs the multi-cycle learning loop for these and embeds the
#: regret/entropy/exploitability curves in the deterministic payload.
LEARNING_ATTACKERS = (ATTACKER_BAYESIAN, ATTACKER_NO_REGRET)
ATTACKERS = (
    ATTACKER_RATIONAL,
    ATTACKER_QUANTAL,
    ATTACKER_ROBUST,
    ATTACKER_MULTI,
    *LEARNING_ATTACKERS,
)

#: Cache policies for the suite's Monte Carlo trials.
CACHE_SHARED = "shared"       # one exact-mode cache per worker (never changes results)
CACHE_PER_TRIAL = "per-trial" # fresh (possibly quantized) cache per trial
CACHE_OFF = "off"             # no caching
CACHE_MODES = (CACHE_SHARED, CACHE_PER_TRIAL, CACHE_OFF)

_BACKENDS = ("scipy", "simplex", "analytic", "fictitious_play")
_TIMINGS = (TIMING_UNIFORM, TIMING_LATE)
_CHARGING = ("conditional", "expected")


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully specified evaluation scenario.

    Every field is JSON-serializable; :meth:`to_dict`/:meth:`from_dict`
    round-trip exactly. Fields with ``None`` defaults resolve to the
    paper's values for the chosen ``setting`` (see :meth:`resolved_budget`
    and :meth:`resolved_window`).

    Attributes
    ----------
    name:
        Unique identifier; matrix expansion appends ``/axis=value`` parts.
    setting:
        ``"single"`` (Figure 2: type 1 only) or ``"multi"`` (Figure 3: all
        seven Table 2 types).
    budget:
        Per-cycle audit budget; ``None`` means the paper's budget for the
        setting (20 single / 50 multi).
    seed:
        Master seed for the dataset *and* the trial-seed expansion.
    n_days:
        Simulated dataset length; the first rolling train/test group is the
        evaluation world.
    training_window:
        History days per group; ``None`` = ``min(41, n_days - 1)``.
    normal_daily_mean:
        Routine (non-engineered) accesses per simulated day — the
        population-volume knob (``source="simulator"`` only).
    diurnal:
        Named intra-day arrival profile: ``hospital``/``uniform``/``night``.
    source:
        Where the alert stream comes from (:mod:`repro.ingest`):
        ``"simulator"`` (the calibrated EMR pipeline, replayable from
        ``seed``), ``"log"`` (a journaled alert log at ``source_path``),
        or ``"mapped"`` (a foreign-schema dump directory with a
        ``mapping.json`` at ``source_path``). Path-backed sources ignore
        the simulator volume knobs; ``seed`` still drives the trial-seed
        expansion.
    source_path:
        Filesystem path for the path-backed sources; must be ``None``
        for ``source="simulator"``.
    attacker:
        ``rational``, ``quantal``, ``robust`` (= quantal attacker against a
        margin-hardened OSSP; requires ``robust_margin > 0``), ``multi``
        (``n_attackers`` independent symmetric rational attackers), or a
        learning model — ``bayesian_learning`` (Beta posterior over
        per-type coverage) / ``no_regret`` (Hedge over attack types); see
        :mod:`repro.learning`.
    rationality:
        Quantal-response precision (used by ``quantal``/``robust``).
    n_attackers:
        Simultaneous attackers per trial (``multi`` only; any other
        attacker with ``n_attackers != 1`` is a :class:`ConfigError`).
    learning_rate:
        Step size for the learning attackers (Hedge rate for
        ``no_regret``; observation weight for ``bayesian_learning``).
    learning_cycles:
        Cycles of the adaptive learning loop the suite runs for learning
        attackers (ignored otherwise).
    fp_iterations:
        Iteration budget for the ``fictitious_play`` backend's dynamics
        (the equilibrium itself stays exact at any budget; this bounds the
        reported exploitability-gap quality).
    robust_margin:
        Hardened quit-constraint margin as a fraction of ``|U_au|``.
    timing:
        ``uniform`` or ``late`` attack timing.
    signaling_enabled:
        ``False`` evaluates the online-SSE (no warning) baseline.
    n_trials:
        Monte Carlo trials (shardable across workers).
    backend:
        Solver backend: ``analytic`` (fast path), ``scipy``, ``simplex``.
    budget_charging:
        ``conditional`` (paper-faithful) or ``expected`` (variance-free).
    cache_mode / cache_budget_step / cache_rate_step / cache_error_budget:
        SSE solution-cache policy. ``shared`` requires exact mode (steps
        0, no error budget) — quantized or certified-adaptive shared
        caches would make results depend on how trials shard across
        workers; ``per-trial`` confines such a cache to one trial, which
        keeps sharding invariance. ``cache_error_budget`` enables the
        certified adaptive mode: cross-state cache reuse only when the
        stored per-state certificate bounds the game-value error within
        the budget (see :mod:`repro.engine.cache`).
    policy_table:
        Compile the session's reachable ``(budget, rates)`` region into a
        certified policy table and serve in-region decisions from it with
        zero solves (see :mod:`repro.engine.policy_table`). Requires the
        analytic backend, ``robust_margin == 0``, and (with signaling) the
        closed-form method.
    """

    name: str
    setting: str = SETTING_SINGLE
    budget: float | None = None
    seed: int = 7
    n_days: int = 48
    training_window: int | None = None
    normal_daily_mean: float = 4000.0
    diurnal: str = "hospital"
    source: str = SOURCE_SIMULATOR
    source_path: str | None = None
    attacker: str = ATTACKER_RATIONAL
    rationality: float = 20.0
    n_attackers: int = 1
    learning_rate: float = 0.5
    learning_cycles: int = 10
    fp_iterations: int = 400
    robust_margin: float = 0.0
    timing: str = TIMING_UNIFORM
    signaling_enabled: bool = True
    n_trials: int = 60
    backend: str = "analytic"
    budget_charging: str = "conditional"
    cache_mode: str = CACHE_SHARED
    cache_budget_step: float = 0.0
    cache_rate_step: float = 0.0
    cache_error_budget: float | None = None
    policy_table: bool = False

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ExperimentError("scenario name must be a non-empty string")
        # Type checks come first so wrong-typed CLI/JSON values (e.g. an
        # --axis string landing in a numeric field) surface as clean
        # ExperimentErrors instead of TypeErrors from the range checks.
        for field_name in (
            "seed", "n_days", "n_trials", "n_attackers",
            "learning_cycles", "fp_iterations",
        ):
            _require_int(getattr(self, field_name), field_name)
        if self.training_window is not None:
            _require_int(self.training_window, "training_window")
        for field_name in (
            "normal_daily_mean", "rationality", "robust_margin",
            "cache_budget_step", "cache_rate_step", "learning_rate",
        ):
            _require_number(getattr(self, field_name), field_name)
        if self.budget is not None:
            _require_number(self.budget, "budget")
        if not isinstance(self.signaling_enabled, bool):
            raise ExperimentError(
                "signaling_enabled must be a boolean, got "
                f"{self.signaling_enabled!r}"
            )
        if not isinstance(self.policy_table, bool):
            raise ExperimentError(
                f"policy_table must be a boolean, got {self.policy_table!r}"
            )
        if self.policy_table and self.backend != "analytic":
            raise ExperimentError(
                "policy_table requires backend='analytic' (the compiled "
                f"geometry is the analytic solver's), got {self.backend!r}"
            )
        if self.policy_table and self.robust_margin > 0:
            raise ExperimentError(
                "policy_table covers the classic OSSP only; robust_margin "
                "must be 0"
            )
        _require(self.setting, SETTINGS, "setting")
        _require(self.attacker, ATTACKERS, "attacker")
        _require(self.timing, _TIMINGS, "timing")
        _require(self.backend, _BACKENDS, "backend")
        _require(self.budget_charging, _CHARGING, "budget_charging")
        _require(self.cache_mode, CACHE_MODES, "cache_mode")
        _require(self.diurnal, tuple(sorted(PROFILE_FACTORIES)), "diurnal")
        _require(self.source, available_sources(), "source")
        if self.source == SOURCE_SIMULATOR:
            if self.source_path is not None:
                raise ConfigError(
                    "source_path is only meaningful for path-backed "
                    f"sources, got source_path={self.source_path!r} with "
                    "source='simulator'"
                )
        elif not self.source_path or not isinstance(self.source_path, str):
            raise ConfigError(
                f"source={self.source!r} needs a source_path string "
                "(the journal file or dump directory to replay)"
            )
        if self.budget is not None and self.budget < 0:
            raise ExperimentError(f"budget must be non-negative, got {self.budget}")
        if self.n_trials <= 0:
            raise ExperimentError(f"n_trials must be positive, got {self.n_trials}")
        if self.n_days < 2:
            raise ExperimentError(f"need at least 2 days, got {self.n_days}")
        if self.training_window is not None and not (
            0 < self.training_window < self.n_days
        ):
            raise ExperimentError(
                f"training_window must lie in (0, n_days), got {self.training_window}"
            )
        if self.rationality < 0:
            raise ExperimentError(
                f"rationality must be non-negative, got {self.rationality}"
            )
        if self.robust_margin < 0:
            raise ExperimentError(
                f"robust_margin must be non-negative, got {self.robust_margin}"
            )
        if self.attacker == ATTACKER_ROBUST and self.robust_margin <= 0:
            raise ExperimentError(
                "the 'robust' attacker scenario needs robust_margin > 0"
            )
        if self.n_attackers < 1:
            raise ExperimentError(
                f"n_attackers must be >= 1, got {self.n_attackers}"
            )
        if self.attacker != ATTACKER_MULTI and self.n_attackers != 1:
            raise ConfigError(
                f"n_attackers={self.n_attackers} requires attacker='multi'; "
                f"attacker={self.attacker!r} plays a single attacker per "
                "trial — drop n_attackers or switch the attacker model"
            )
        if not self.learning_rate > 0:
            raise ExperimentError(
                f"learning_rate must be > 0, got {self.learning_rate}"
            )
        if self.learning_cycles < 1:
            raise ExperimentError(
                f"learning_cycles must be >= 1, got {self.learning_cycles}"
            )
        if self.fp_iterations < 1:
            raise ExperimentError(
                f"fp_iterations must be >= 1, got {self.fp_iterations}"
            )
        if self.cache_budget_step < 0 or self.cache_rate_step < 0:
            raise ExperimentError("cache quantization steps must be non-negative")
        if self.cache_error_budget is not None:
            _require_number(self.cache_error_budget, "cache_error_budget")
            if self.cache_error_budget < 0:
                raise ExperimentError(
                    "cache_error_budget must be non-negative, got "
                    f"{self.cache_error_budget}"
                )
        if self.cache_mode == CACHE_SHARED and (
            self.cache_budget_step > 0
            or self.cache_rate_step > 0
            or self.cache_error_budget is not None
        ):
            raise ExperimentError(
                "cache_mode='shared' requires exact caching (steps 0, no "
                "error budget); a lossy or certified-adaptive shared cache "
                "would make results depend on trial sharding — use "
                "cache_mode='per-trial' instead"
            )

    # ------------------------------------------------------------------
    # Resolution helpers (None defaults -> paper values)
    # ------------------------------------------------------------------

    def resolved_budget(self) -> float:
        """The cycle budget, defaulting to the paper's value per setting."""
        if self.budget is not None:
            return float(self.budget)
        return SINGLE_TYPE_BUDGET if self.setting == SETTING_SINGLE else MULTI_TYPE_BUDGET

    def resolved_window(self, store: AlertLogStore | None = None) -> int:
        """Training window, defaulting to the paper's 41-day cap.

        An explicit ``training_window`` always wins; otherwise the cap
        applies to ``store``'s actual day count when one is given (an
        explicitly passed store may be smaller than ``n_days``), else to
        ``n_days``.
        """
        if self.training_window is not None:
            return self.training_window
        n_days = len(store.days) if store is not None else self.n_days
        return min(41, n_days - 1)

    def payoffs(self) -> dict[int, PayoffMatrix]:
        """Table 2 payoffs for the chosen setting."""
        if self.setting == SETTING_SINGLE:
            return {SINGLE_TYPE_ID: TABLE2_PAYOFFS[SINGLE_TYPE_ID]}
        return dict(TABLE2_PAYOFFS)

    def costs(self) -> dict[int, float]:
        """Per-type audit costs for the chosen setting."""
        return {type_id: paper_costs()[type_id] for type_id in self.payoffs()}

    def type_ids(self) -> tuple[int, ...]:
        """Alert types in play."""
        return tuple(sorted(self.payoffs()))

    def attacker_model(
        self,
    ) -> (
        RationalAttacker
        | QuantalResponseAttacker
        | BayesianLearningAttacker
        | NoRegretAttacker
    ):
        """A fresh attacker instance the Monte Carlo trials play against.

        Learning attackers are stateful (beliefs move at cycle
        boundaries); callers that need sharding invariance build one per
        trial via this factory.
        """
        if self.attacker in (ATTACKER_QUANTAL, ATTACKER_ROBUST):
            return QuantalResponseAttacker(self.rationality)
        if self.attacker == ATTACKER_BAYESIAN:
            return BayesianLearningAttacker(observation_weight=self.learning_rate)
        if self.attacker == ATTACKER_NO_REGRET:
            return NoRegretAttacker(learning_rate=self.learning_rate)
        return RationalAttacker()

    @property
    def learning_attacker(self) -> bool:
        """Whether this scenario's attacker adapts across cycles."""
        return self.attacker in LEARNING_ATTACKERS

    # ------------------------------------------------------------------
    # World construction
    # ------------------------------------------------------------------

    def build_store(self) -> AlertLogStore:
        """The (memoized) alert store this scenario evaluates on.

        Routes through the :mod:`repro.ingest` source registry: the
        simulator source keeps its parameter-keyed memoization in
        :func:`repro.experiments.dataset.build_alert_store`; path-backed
        sources (``log``/``mapped``) load from ``source_path``.
        """
        if self.source == SOURCE_SIMULATOR:
            return build_alert_store(
                seed=self.seed,
                n_days=self.n_days,
                normal_daily_mean=self.normal_daily_mean,
                diurnal=self.diurnal,
            )
        return store_for(self.source, self.source_path)

    def build_harness(self, store: AlertLogStore | None = None) -> EvaluationHarness:
        """Evaluation harness over this scenario's store and parameters."""
        return EvaluationHarness(
            store if store is not None else self.build_store(),
            payoffs=self.payoffs(),
            costs=self.costs(),
            budget=self.resolved_budget(),
            type_ids=self.type_ids(),
            backend=self.backend,
            seed=self.seed,
            budget_charging=self.budget_charging,
            fp_iterations=self.fp_iterations,
        )

    def build_world(
        self, store: AlertLogStore | None = None
    ) -> tuple[list[AlertRecord], CycleContext, TrainTestSplit]:
        """The first rolling group's (alerts, context, split) triple.

        This is the frozen evaluation world every Monte Carlo trial
        replays; the runner computes it once per scenario and ships it
        (pickled) to shard workers, so shards never re-simulate it.
        """
        if store is None:
            store = self.build_store()
        harness = self.build_harness(store)
        split = harness.splits(window=self.resolved_window(store))[0]
        alerts = harness.test_alerts(split)
        if not alerts:
            raise ExperimentError(
                f"scenario {self.name!r}: test day {split.test_day} has no alerts"
            )
        return alerts, harness.context_for(split), split

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-compatible scalars only)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - fields
        if unknown:
            raise ExperimentError(
                f"unknown ScenarioSpec fields: {sorted(unknown)}"
            )
        return cls(**dict(payload))

    def to_json(self, indent: int | None = None) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ExperimentError("a ScenarioSpec JSON document must be an object")
        return cls.from_dict(payload)

    def with_updates(self, **changes: Any) -> "ScenarioSpec":
        """A copy with fields replaced (re-validated)."""
        return dataclasses.replace(self, **changes)


def _require(value: str, allowed: tuple[str, ...], field_name: str) -> None:
    if value not in allowed:
        raise ExperimentError(
            f"unknown {field_name} {value!r}; expected one of {list(allowed)}"
        )


def _require_int(value: Any, field_name: str) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ExperimentError(
            f"{field_name} must be an integer, got {value!r}"
        )


def _require_number(value: Any, field_name: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExperimentError(
            f"{field_name} must be a number, got {value!r}"
        )
