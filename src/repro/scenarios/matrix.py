"""Cartesian scenario sweeps.

A :class:`ScenarioMatrix` is a base :class:`~repro.scenarios.spec.ScenarioSpec`
plus a set of axes — spec fields, each with the values to sweep. Expansion
is the cartesian product, producing one named spec per cell, every one
re-validated through the spec's own constructor. Like specs, matrices are
fully serializable, so a sweep can live in a JSON file and be handed to
``repro suite``.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.errors import ExperimentError
from repro.scenarios.spec import ScenarioSpec

_SPEC_FIELDS = {f.name for f in dataclasses.fields(ScenarioSpec)}


@dataclass(frozen=True)
class ScenarioMatrix:
    """A base spec swept over one or more field axes.

    ``axes`` preserves insertion order: the last axis varies fastest in
    :meth:`expand`, like nested for-loops. Cell names append
    ``/field=value`` parts to the base name, so every expanded spec is
    uniquely identified and self-describing.
    """

    base: ScenarioSpec
    axes: tuple[tuple[str, tuple[Any, ...]], ...]

    def __init__(
        self,
        base: ScenarioSpec,
        axes: Mapping[str, Sequence[Any]] | Sequence[tuple[str, Sequence[Any]]],
    ) -> None:
        pairs = tuple(axes.items()) if isinstance(axes, Mapping) else tuple(axes)
        if not pairs:
            raise ExperimentError("a scenario matrix needs at least one axis")
        seen: set[str] = set()
        normalized = []
        for field_name, values in pairs:
            if field_name not in _SPEC_FIELDS:
                raise ExperimentError(
                    f"unknown ScenarioSpec field {field_name!r} in matrix axes"
                )
            if field_name == "name":
                raise ExperimentError(
                    "'name' cannot be a matrix axis; cell names are derived"
                )
            if field_name in seen:
                raise ExperimentError(f"duplicate matrix axis {field_name!r}")
            seen.add(field_name)
            values = tuple(values)
            if not values:
                raise ExperimentError(f"axis {field_name!r} has no values")
            if len(set(values)) != len(values):
                raise ExperimentError(f"axis {field_name!r} repeats values")
            normalized.append((field_name, values))
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "axes", tuple(normalized))

    @property
    def size(self) -> int:
        """Number of cells the matrix expands to (product of axis lengths)."""
        size = 1
        for _, values in self.axes:
            size *= len(values)
        return size

    def expand(self) -> tuple[ScenarioSpec, ...]:
        """All cells as validated specs, last axis varying fastest."""
        names = [field_name for field_name, _ in self.axes]
        specs = []
        for combo in itertools.product(*(values for _, values in self.axes)):
            suffix = ",".join(
                f"{field_name}={value}" for field_name, value in zip(names, combo)
            )
            specs.append(
                self.base.with_updates(
                    name=f"{self.base.name}/{suffix}",
                    **dict(zip(names, combo)),
                )
            )
        return tuple(specs)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form: ``{"base": {...}, "axes": {field: [values]}}``."""
        return {
            "base": self.base.to_dict(),
            "axes": {field_name: list(values) for field_name, values in self.axes},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioMatrix":
        """Inverse of :meth:`to_dict`."""
        unknown = set(payload) - {"base", "axes"}
        if unknown:
            raise ExperimentError(
                f"unknown ScenarioMatrix keys: {sorted(unknown)}"
            )
        if "base" not in payload or "axes" not in payload:
            raise ExperimentError("a ScenarioMatrix needs 'base' and 'axes'")
        return cls(
            base=ScenarioSpec.from_dict(payload["base"]),
            axes={
                field_name: tuple(values)
                for field_name, values in dict(payload["axes"]).items()
            },
        )

    def to_json(self, indent: int | None = None) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioMatrix":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ExperimentError("a ScenarioMatrix JSON document must be an object")
        return cls.from_dict(payload)
