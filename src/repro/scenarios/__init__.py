"""Scenario suite: declarative specs, cartesian sweeps, sharded parallel runs.

The workload-diversity layer on top of the evaluation stack:

* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec`, a serializable
  description of one evaluation world (population, diurnal profile,
  attacker model, budget regime, backend, cache policy);
* :mod:`repro.scenarios.presets` — named paper-derived specs;
* :mod:`repro.scenarios.matrix` — :class:`ScenarioMatrix` cartesian sweeps;
* :mod:`repro.scenarios.runner` — :class:`ParallelRunner`, which shards
  Monte Carlo trials across processes with results bit-identical to a
  serial run.
"""

from repro.scenarios.matrix import ScenarioMatrix
from repro.scenarios.presets import PRESETS, get_scenario, scenario_names
from repro.scenarios.runner import (
    ParallelRunner,
    ScenarioResult,
    SuiteResult,
)
from repro.scenarios.spec import (
    ATTACKER_MULTI,
    ATTACKER_QUANTAL,
    ATTACKER_RATIONAL,
    ATTACKER_ROBUST,
    CACHE_OFF,
    CACHE_PER_TRIAL,
    CACHE_SHARED,
    SETTING_MULTI,
    SETTING_SINGLE,
    ScenarioSpec,
)

__all__ = [
    "ATTACKER_MULTI",
    "ATTACKER_QUANTAL",
    "ATTACKER_RATIONAL",
    "ATTACKER_ROBUST",
    "CACHE_OFF",
    "CACHE_PER_TRIAL",
    "CACHE_SHARED",
    "PRESETS",
    "ParallelRunner",
    "ScenarioMatrix",
    "ScenarioResult",
    "ScenarioSpec",
    "SETTING_MULTI",
    "SETTING_SINGLE",
    "SuiteResult",
    "get_scenario",
    "scenario_names",
]
