"""Named, paper-derived scenario presets.

Each preset is a :class:`~repro.scenarios.spec.ScenarioSpec` anchored in a
specific piece of the paper's evaluation (or one of its flagged
future-work directions). ``repro suite --list`` prints this registry;
``repro suite --scenarios <names>`` runs any subset, and presets are the
natural bases for :class:`~repro.scenarios.matrix.ScenarioMatrix` sweeps.

Trial counts default to 60 (matching the CLI's historical ``montecarlo``
subcommand); override per run with ``repro suite --trials``.
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.scenarios.spec import ScenarioSpec

#: The registry, in presentation order.
PRESETS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        # The paper's Figure 2 world, validated empirically: single type,
        # budget 20, uniform attack timing.
        ScenarioSpec(name="fig2-uniform"),
        # The "late attacker" thought experiment knowledge rollback defuses.
        ScenarioSpec(name="fig2-late", timing="late"),
        # Figure 3's seven-type world, budget 50.
        ScenarioSpec(name="fig3-multi", setting="multi"),
        # Online-SSE baseline (signaling off) on the Figure 2 world —
        # the gap to fig2-uniform is the realized value of the warning.
        ScenarioSpec(name="fig2-no-signaling", signaling_enabled=False),
        # Budget regimes around the paper's 20: starved and saturated.
        ScenarioSpec(name="budget-lean", budget=8.0),
        ScenarioSpec(name="budget-rich", budget=60.0),
        # The conclusion's bounded-rationality warning, quantified.
        ScenarioSpec(name="quantal", attacker="quantal", rationality=20.0),
        # The robust-SAG fix: hardened quit constraint vs the same attacker.
        ScenarioSpec(
            name="robust",
            attacker="robust",
            rationality=20.0,
            robust_margin=0.1,
        ),
        # The multiple-attacker future-work direction: three independent
        # symmetric rational attackers per day.
        ScenarioSpec(name="multi-attacker", attacker="multi", n_attackers=3),
        # Diurnal stress: the alert mass arrives overnight, inverting the
        # budget-pacing problem.
        ScenarioSpec(name="night-shift", diurnal="night"),
        # Adaptive adversaries: a Bayesian attacker estimating the audit
        # coverage from observed cycles, and a no-regret (Hedge) attacker
        # driven by per-cycle payoff feedback. Both add a learning-curve
        # section (regret / posterior entropy / exploitability gap) to the
        # suite payload, solved through the fictitious-play backend so the
        # equilibrium side exercises learning dynamics too.
        ScenarioSpec(
            name="learning-bayesian",
            attacker="bayesian_learning",
            backend="fictitious_play",
            learning_cycles=20,
        ),
        ScenarioSpec(
            name="learning-no-regret",
            attacker="no_regret",
            backend="fictitious_play",
            learning_cycles=20,
        ),
    )
}


def scenario_names() -> tuple[str, ...]:
    """Registered preset names, in presentation order."""
    return tuple(PRESETS)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a preset by name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scenario {name!r}; registered: {', '.join(PRESETS)}"
        ) from None
