"""Stochastic substrate: Poisson machinery, diurnal arrival profiles, and the
historical future-alert estimator (with the paper's knowledge-rollback
technique)."""

from repro.stats.poisson import (
    PoissonReciprocalMoment,
    expected_reciprocal,
    poisson_cdf,
    poisson_pmf,
)
from repro.stats.diurnal import DiurnalProfile, SECONDS_PER_DAY, hospital_profile
from repro.stats.estimator import (
    FutureAlertEstimator,
    RollbackEstimator,
    build_estimator,
)

__all__ = [
    "PoissonReciprocalMoment",
    "expected_reciprocal",
    "poisson_cdf",
    "poisson_pmf",
    "DiurnalProfile",
    "SECONDS_PER_DAY",
    "hospital_profile",
    "FutureAlertEstimator",
    "RollbackEstimator",
    "build_estimator",
]
