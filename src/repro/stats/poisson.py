"""Poisson probability helpers and the truncated reciprocal moment.

LP (2) in the paper sets the marginal audit probability of alert type ``t'``
to ``theta = E_{d ~ Poisson(lambda)}[ B / (V d) ]``. The expectation makes
the constraint *linear* in the budget share ``B`` because

    E[ B / (V d) ] = (B / V) * E[1/d]

and ``E[1/d]`` depends only on ``lambda``. Since an audited alert must
exist for the expectation to matter (and ``1/d`` is undefined at ``d = 0``),
we use the moment conditioned on at least one arrival:

    r(lambda) = E[ 1/d | d >= 1 ]
              = sum_{k>=1} (1/k) * pmf(k; lambda) / (1 - pmf(0; lambda)).

``r`` is continuous with ``r(0+) = 1`` and decreases towards ``1/lambda``
for large ``lambda``.
"""

from __future__ import annotations

import math

from repro.errors import EstimationError

_SERIES_TOL = 1e-14
_MAX_TERMS = 100_000
_TINY_LAMBDA = 1e-12


def poisson_pmf(k: int, lam: float) -> float:
    """``P[X = k]`` for ``X ~ Poisson(lam)``."""
    if k < 0:
        return 0.0
    if lam < 0:
        raise EstimationError(f"Poisson rate must be non-negative, got {lam}")
    if lam == 0:
        return 1.0 if k == 0 else 0.0
    return math.exp(k * math.log(lam) - lam - math.lgamma(k + 1))


def poisson_cdf(k: int, lam: float) -> float:
    """``P[X <= k]`` for ``X ~ Poisson(lam)``."""
    if k < 0:
        return 0.0
    total = 0.0
    for i in range(k + 1):
        total += poisson_pmf(i, lam)
    return min(total, 1.0)


def expected_reciprocal(lam: float, tol: float = _SERIES_TOL) -> float:
    """The conditional reciprocal moment ``E[1/d | d >= 1]``, ``d ~ Poisson(lam)``.

    Computed by direct series summation. Terms ``(1/k) pmf(k)`` decay
    super-geometrically once ``k > lam``; summation stops when the running
    term falls below ``tol`` times the accumulated mass *and* ``k`` has
    passed the mode, which bounds the discarded tail by ``tol``.
    """
    if lam < 0:
        raise EstimationError(f"Poisson rate must be non-negative, got {lam}")
    if lam <= _TINY_LAMBDA:
        # Conditioned on d >= 1, Poisson(0+) is a point mass at 1.
        return 1.0

    mass_above_zero = -math.expm1(-lam)  # 1 - e^{-lam}, stable for small lam
    total = 0.0
    term = lam * math.exp(-lam)  # pmf(1)
    k = 1
    while k < _MAX_TERMS:
        total += term / k
        if k > lam and term / k < tol * max(total, 1e-300):
            break
        term *= lam / (k + 1)
        k += 1
    else:  # pragma: no cover - series always converges well before the cap
        raise EstimationError(f"reciprocal-moment series did not converge (lam={lam})")
    return total / mass_above_zero


def expected_reciprocal_slope(lam: float) -> float:
    """``d/d lambda`` of :func:`expected_reciprocal`, in closed form.

    Differentiating the conditional moment ``r(lam) = S(lam) / (1 - e^-lam)``
    with ``S = sum_{k>=1} pmf(k; lam) / k`` and using
    ``pmf'(k) = pmf(k) (k/lam - 1)`` collapses the series to

        r'(lam) = 1/lam - r(lam) / (1 - e^-lam).

    The two terms are both ``~1/lam`` for small rates, but their difference
    stays well-conditioned down to ``lam ~ 1e-9``; below that the Taylor
    limit ``r'(0+) = -1/4`` is returned directly. The slope is negative
    (more expected arrivals dilute the reciprocal) and its magnitude is
    bounded by 1/4 everywhere — the bound the solution-cache certificates
    lean on.
    """
    if lam < 0:
        raise EstimationError(f"Poisson rate must be non-negative, got {lam}")
    if lam <= 1e-9:
        return -0.25
    return 1.0 / lam - expected_reciprocal(lam) / (-math.expm1(-lam))


class PoissonReciprocalMoment:
    """Memoized ``expected_reciprocal`` lookup.

    The online solvers evaluate the moment for the same handful of rates
    thousands of times per simulated day; caching on a rounded key keeps the
    estimator exact to ``decimals`` digits while making lookups O(1).
    """

    def __init__(self, decimals: int = 9) -> None:
        self._decimals = decimals
        self._cache: dict[float, float] = {}
        self._slopes: dict[float, float] = {}

    def __call__(self, lam: float) -> float:
        key = round(float(lam), self._decimals)
        value = self._cache.get(key)
        if value is None:
            value = expected_reciprocal(key if key > 0 else max(key, 0.0))
            self._cache[key] = value
        return value

    def slope(self, lam: float) -> float:
        """Memoized :func:`expected_reciprocal_slope` (same rounded key)."""
        key = round(float(lam), self._decimals)
        value = self._slopes.get(key)
        if value is None:
            value = expected_reciprocal_slope(max(key, 0.0))
            self._slopes[key] = value
        return value

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        """Drop all memoized values."""
        self._cache.clear()
        self._slopes.clear()
