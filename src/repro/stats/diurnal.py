"""Diurnal (time-of-day) arrival intensity profiles.

The paper's evaluation notes that "the majority of alerts were triggered
between 8:00 AM and 5:00 PM, which generally corresponds to changes in
worker shifts", with a much slower rate outside that window. The synthetic
access-log simulator reproduces that shape with a piecewise-constant
intensity over the 24 hourly buckets of a day.

Times of day are represented as seconds in ``[0, 86400)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataError

SECONDS_PER_DAY = 86_400
_HOURS = 24
_SECONDS_PER_HOUR = SECONDS_PER_DAY // _HOURS


@dataclass(frozen=True)
class DiurnalProfile:
    """A normalized piecewise-constant intensity over 24 hourly buckets.

    ``weights[h]`` is proportional to the arrival intensity during hour
    ``h``; the profile normalizes them to sum to one so that
    ``fraction_after(t)`` is the share of a day's arrivals after time ``t``.
    """

    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.weights) != _HOURS:
            raise DataError(f"expected {_HOURS} hourly weights, got {len(self.weights)}")
        raw = np.asarray(self.weights, dtype=float)
        if np.any(raw < 0) or not np.all(np.isfinite(raw)):
            raise DataError("hourly weights must be finite and non-negative")
        total = float(raw.sum())
        if total <= 0:
            raise DataError("hourly weights must not all be zero")
        object.__setattr__(self, "weights", tuple(raw / total))

    @property
    def _cumulative(self) -> np.ndarray:
        cumulative = np.concatenate([[0.0], np.cumsum(self.weights)])
        cumulative[-1] = 1.0
        return cumulative

    def intensity(self, time_of_day: float) -> float:
        """Instantaneous intensity (per second, for a unit daily total)."""
        self._check_time(time_of_day)
        hour = min(int(time_of_day // _SECONDS_PER_HOUR), _HOURS - 1)
        return self.weights[hour] / _SECONDS_PER_HOUR

    def fraction_before(self, time_of_day: float) -> float:
        """Share of the day's arrivals occurring strictly before ``time_of_day``."""
        self._check_time(time_of_day)
        hour = int(time_of_day // _SECONDS_PER_HOUR)
        if hour >= _HOURS:
            return 1.0
        within = (time_of_day - hour * _SECONDS_PER_HOUR) / _SECONDS_PER_HOUR
        return float(self._cumulative[hour] + within * self.weights[hour])

    def fraction_after(self, time_of_day: float) -> float:
        """Share of the day's arrivals occurring at or after ``time_of_day``."""
        return 1.0 - self.fraction_before(time_of_day)

    def sample_times(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` arrival times (seconds), sorted ascending.

        Uses inverse-CDF sampling over the piecewise-linear cumulative
        distribution, which is exact for a piecewise-constant intensity.
        """
        if count < 0:
            raise DataError(f"count must be non-negative, got {count}")
        if count == 0:
            return np.empty(0)
        uniforms = rng.random(count)
        cumulative = self._cumulative
        hours = np.searchsorted(cumulative, uniforms, side="right") - 1
        hours = np.clip(hours, 0, _HOURS - 1)
        weights = np.asarray(self.weights)
        base = cumulative[hours]
        span = weights[hours]
        # Hours with zero weight are never selected by searchsorted because
        # their cumulative interval is empty; guard anyway for safety.
        with np.errstate(divide="ignore", invalid="ignore"):
            within = np.where(span > 0, (uniforms - base) / span, 0.0)
        times = (hours + within) * _SECONDS_PER_HOUR
        return np.sort(times)

    @staticmethod
    def uniform() -> "DiurnalProfile":
        """A flat profile (equal intensity in every hour)."""
        return DiurnalProfile(tuple(1.0 for _ in range(_HOURS)))

    @staticmethod
    def _check_time(time_of_day: float) -> None:
        if not 0 <= time_of_day <= SECONDS_PER_DAY:
            raise DataError(
                f"time of day must lie in [0, {SECONDS_PER_DAY}], got {time_of_day}"
            )


def night_shift_profile() -> DiurnalProfile:
    """An inverted workload: activity concentrates overnight.

    Not a paper scenario — a stress profile for the scenario suite. Late
    attackers and budget pacing behave very differently when the alert mass
    arrives while the day's budget is nearly spent.
    """
    weights = [
        4.8, 5.2, 5.5, 5.5, 5.0, 4.2,      # 00:00 - 06:00 overnight plateau
        2.5, 1.2,                          # 06:00 - 08:00 hand-off
        0.5, 0.4, 0.3, 0.3, 0.3, 0.3, 0.4, 0.5, 0.6,  # 08:00 - 17:00 lull
        0.9, 1.2,                          # 17:00 - 19:00 ramp-up
        1.8, 2.8, 3.6, 4.2, 4.6,           # 19:00 - 24:00 build toward night
    ]
    return DiurnalProfile(tuple(weights))


def hospital_profile() -> DiurnalProfile:
    """The default workday-peaked profile used by the EMR simulator.

    Intensity ramps up from 06:00, plateaus between 08:00 and 17:00 (where
    the paper reports most alerts fall), and tails off through the evening,
    with a low night-shift floor.
    """
    weights = [
        0.4, 0.3, 0.25, 0.25, 0.3, 0.5,   # 00:00 - 06:00 night floor
        1.2, 2.5,                          # 06:00 - 08:00 ramp-up
        5.0, 5.5, 5.5, 5.2, 4.8, 5.0, 5.2, 4.8, 4.2,  # 08:00 - 17:00 plateau
        2.8, 1.8,                          # 17:00 - 19:00 wind-down
        1.2, 0.9, 0.7, 0.6, 0.5,           # 19:00 - 24:00 evening tail
    ]
    return DiurnalProfile(tuple(weights))


#: Named profile factories usable wherever configuration is serialized
#: (scenario specs, the dataset builder's memoization key).
PROFILE_FACTORIES = {
    "hospital": hospital_profile,
    "uniform": DiurnalProfile.uniform,
    "night": night_shift_profile,
}


def named_profile(name: str) -> DiurnalProfile:
    """Resolve a profile preset name (``hospital``/``uniform``/``night``)."""
    try:
        return PROFILE_FACTORIES[name]()
    except KeyError:
        raise DataError(
            f"unknown diurnal profile {name!r}; "
            f"expected one of {sorted(PROFILE_FACTORIES)}"
        ) from None
