"""Estimation of future alert volumes from historical logs.

The online solvers need, at any time-of-day ``s`` during the audit cycle, an
estimate of how many more alerts of each type will arrive before the cycle
ends. Following the paper (footnote 3: "The vast majority of alerts are
false positives. Consequently, we can estimate d^t_tau from alert log
data."), the estimate is the empirical mean over historical days of the
number of alerts of that type arriving after ``s``. That mean is used as
the rate ``lambda`` of the Poisson distribution ``D^t_tau`` in LP (2).

Knowledge rollback (paper §5): near the end of the day the means collapse
towards zero, which would let a late attacker strike after the budget model
believes the day is over. When the *total* remaining mean drops below a
threshold (4.0 in both of the paper's experiments), the estimator re-uses
the estimate anchored at the last alert that arrived while knowledge was
still above the threshold, keeping budget consumption steady.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import EstimationError
from repro.stats.diurnal import SECONDS_PER_DAY

#: Threshold used in both of the paper's experiments.
DEFAULT_ROLLBACK_THRESHOLD = 4.0


class FutureAlertEstimator:
    """Empirical remaining-day alert-count estimator.

    Parameters
    ----------
    history:
        Mapping from alert-type id to a list of per-day arrival-time arrays
        (seconds within the day). Every type must supply the same number of
        historical days.
    """

    def __init__(self, history: Mapping[int, Sequence[Iterable[float]]]) -> None:
        if not history:
            raise EstimationError("history must cover at least one alert type")
        self._days: int | None = None
        self._times: dict[int, list[np.ndarray]] = {}
        for type_id, day_lists in history.items():
            arrays = [np.sort(np.asarray(list(day), dtype=float)) for day in day_lists]
            if self._days is None:
                self._days = len(arrays)
            elif len(arrays) != self._days:
                raise EstimationError(
                    f"type {type_id} has {len(arrays)} historical days, "
                    f"expected {self._days}"
                )
            for day_index, array in enumerate(arrays):
                if array.size and (array[0] < 0 or array[-1] > SECONDS_PER_DAY):
                    raise EstimationError(
                        f"type {type_id} day {day_index}: times outside a day"
                    )
            self._times[type_id] = arrays
        if self._days == 0:
            raise EstimationError("history must contain at least one day")
        # Remaining-mean queries are the per-alert hot path. The mean over
        # days of "arrivals after s" equals the count of arrivals after `s`
        # in the *merged* history divided by the number of days, so one
        # searchsorted over a per-type concatenated sorted array replaces a
        # searchsorted per historical day.
        self._merged: dict[int, np.ndarray] = {
            type_id: np.sort(np.concatenate(arrays))
            for type_id, arrays in self._times.items()
        }

    @property
    def type_ids(self) -> tuple[int, ...]:
        """Alert types covered by this estimator."""
        return tuple(sorted(self._times))

    @property
    def n_days(self) -> int:
        """Number of historical days backing the estimates."""
        return int(self._days or 0)

    def remaining_mean(self, type_id: int, time_of_day: float) -> float:
        """Mean number of type-``type_id`` alerts arriving strictly after ``time_of_day``."""
        self._require(type_id)
        merged = self._merged[type_id]
        remaining = merged.size - int(
            np.searchsorted(merged, time_of_day, side="right")
        )
        return remaining / int(self._days or 1)

    def remaining_means(self, time_of_day: float) -> dict[int, float]:
        """``remaining_mean`` for every covered type."""
        return {
            type_id: self.remaining_mean(type_id, time_of_day)
            for type_id in self.type_ids
        }

    def total_remaining_mean(self, time_of_day: float) -> float:
        """Sum of remaining means across all types."""
        return sum(self.remaining_means(time_of_day).values())

    def daily_mean(self, type_id: int) -> float:
        """Mean daily count of ``type_id`` over the historical days."""
        arrays = self._require(type_id)
        return float(np.mean([array.size for array in arrays]))

    def daily_std(self, type_id: int) -> float:
        """Sample standard deviation of the daily count of ``type_id``."""
        arrays = self._require(type_id)
        counts = np.array([array.size for array in arrays], dtype=float)
        if counts.size < 2:
            return 0.0
        return float(np.std(counts, ddof=1))

    def _require(self, type_id: int) -> list[np.ndarray]:
        if type_id not in self._times:
            raise EstimationError(f"estimator has no history for alert type {type_id}")
        return self._times[type_id]

    def rate_trajectory(self) -> tuple[np.ndarray, np.ndarray]:
        """The remaining-mean step function over the day, as arrays.

        Within a cycle the rate vector is a deterministic step function of
        the (effective) query time: it changes only at historical arrival
        times. Returns ``(boundaries, rates)`` where ``boundaries`` is the
        sorted union of all merged historical arrival times (shape ``(K,)``)
        and ``rates`` has shape ``(K + 1, n_types)`` with columns ordered by
        :attr:`type_ids`. Row ``j`` holds :meth:`remaining_mean` for every
        query time ``t`` with ``searchsorted(boundaries, t, 'right') == j``
        — i.e. row 0 covers times before the first arrival and row ``j``
        covers ``[boundaries[j-1], boundaries[j])``.

        The rows are produced by the same ``searchsorted`` + integer
        division as :meth:`remaining_mean`, so they are bitwise identical
        to the scalar path — the policy-table compiler relies on that.
        """
        type_ids = self.type_ids
        boundaries = np.unique(np.concatenate(
            [self._merged[t] for t in type_ids]
        )) if any(self._merged[t].size for t in type_ids) else np.empty(0)
        days = int(self._days or 1)
        rates = np.empty((boundaries.size + 1, len(type_ids)), dtype=float)
        for col, type_id in enumerate(type_ids):
            merged = self._merged[type_id]
            rates[0, col] = merged.size / days
            if boundaries.size:
                counts = np.searchsorted(merged, boundaries, side="right")
                rates[1:, col] = (merged.size - counts) / days
        return boundaries, rates


class RollbackEstimator:
    """Knowledge-rollback wrapper around a :class:`FutureAlertEstimator`.

    The wrapper is stateful within a single audit cycle: call
    :meth:`observe_alert` as each alert arrives, then query
    :meth:`remaining_means` / :meth:`remaining_mean`. When the total
    remaining mean at the most recent alert falls below ``threshold``, the
    query time is frozen at the anchor — the last alert time at which the
    total mean was still at or above the threshold — exactly the paper's
    "apply the estimation of the number of future alerts in the time point
    when the last alert was triggered".
    """

    def __init__(
        self,
        base: FutureAlertEstimator,
        threshold: float = DEFAULT_ROLLBACK_THRESHOLD,
        enabled: bool = True,
    ) -> None:
        if threshold < 0:
            raise EstimationError(f"threshold must be non-negative, got {threshold}")
        self._base = base
        self._threshold = float(threshold)
        self._enabled = bool(enabled)
        self._anchor = 0.0

    @property
    def base(self) -> FutureAlertEstimator:
        """The wrapped estimator."""
        return self._base

    @property
    def enabled(self) -> bool:
        """Whether rollback is active (disable for ablations)."""
        return self._enabled

    @property
    def threshold(self) -> float:
        """The rollback threshold on the total remaining mean."""
        return self._threshold

    @property
    def anchor_time(self) -> float:
        """Current frozen anchor time-of-day."""
        return self._anchor

    def sync_anchor(self, time_of_day: float) -> None:
        """Set the anchor directly.

        Used by vectorized front ends (the policy-table fast path) that
        precompute the anchor recursion for a whole batch and need to hand
        the equivalent state back before interleaving per-alert calls.
        """
        self._anchor = float(time_of_day)

    def reset(self) -> None:
        """Start a fresh audit cycle."""
        self._anchor = 0.0

    def observe_alert(self, time_of_day: float) -> None:
        """Record an alert arrival; advances the anchor while knowledge is rich."""
        if self._base.total_remaining_mean(time_of_day) >= self._threshold:
            self._anchor = float(time_of_day)

    def effective_time(self, time_of_day: float) -> float:
        """The time actually used for estimation queries at ``time_of_day``."""
        if not self._enabled:
            return float(time_of_day)
        if self._base.total_remaining_mean(time_of_day) >= self._threshold:
            return float(time_of_day)
        return self._anchor

    def remaining_mean(self, type_id: int, time_of_day: float) -> float:
        """Rollback-aware remaining mean for one type."""
        return self._base.remaining_mean(type_id, self.effective_time(time_of_day))

    def remaining_means(self, time_of_day: float) -> dict[int, float]:
        """Rollback-aware remaining means for every type."""
        return self._base.remaining_means(self.effective_time(time_of_day))

    @property
    def type_ids(self) -> tuple[int, ...]:
        """Alert types covered by the wrapped estimator."""
        return self._base.type_ids


def build_estimator(
    history: Mapping[int, Sequence[Iterable[float]]],
    rollback: bool = True,
    threshold: float = DEFAULT_ROLLBACK_THRESHOLD,
) -> RollbackEstimator:
    """Convenience constructor: historical times -> rollback estimator."""
    return RollbackEstimator(
        FutureAlertEstimator(history), threshold=threshold, enabled=rollback
    )
