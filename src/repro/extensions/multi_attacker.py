"""Multiple simultaneous attackers.

The paper focuses "on the one attacker setting as a pilot study of SAG",
flagging multiple attackers as the next step. This module implements the
natural first model: ``m`` independent, symmetric, rational attackers who
each observe the same committed marginals and independently best-respond.

Because the attackers are symmetric and the marginal coverage of an alert
type protects *each* alert of that type equally, the auditor's equilibrium
marginals coincide with the single-attacker SSE; what changes is the
auditor's aggregate exposure (``m`` times the per-attacker value) and the
deterrence analysis: the budget needed to deter everyone must push *every*
type below zero attacker utility.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.errors import ModelError
from repro.core.payoffs import PayoffMatrix
from repro.core.sse import GameState, SSESolution, solve_online_sse
from repro.solvers.registry import DEFAULT_BACKEND
from repro.stats.poisson import PoissonReciprocalMoment


@dataclass(frozen=True)
class MultiAttackerSolution:
    """SSE marginals plus aggregate utilities for ``m`` attackers."""

    base: SSESolution
    n_attackers: int
    total_auditor_utility: float
    per_attacker_utility: float

    @property
    def deterred(self) -> bool:
        """Whether every attacker prefers not to attack."""
        return self.base.deterred


def solve_multi_attacker_sse(
    state: GameState,
    payoffs: Mapping[int, PayoffMatrix],
    costs: Mapping[int, float],
    n_attackers: int,
    backend: str = DEFAULT_BACKEND,
    moment: PoissonReciprocalMoment | None = None,
) -> MultiAttackerSolution:
    """The symmetric ``m``-attacker online SSE.

    Marginals equal the single-attacker SSE; aggregate auditor utility is
    the per-attacker effective value times ``m`` (independent attackers,
    linear utilities). Pass a shared ``moment`` memo when solving many
    states so the reciprocal-moment table persists across calls.
    """
    if n_attackers <= 0:
        raise ModelError(f"n_attackers must be positive, got {n_attackers}")
    base = solve_online_sse(state, payoffs, costs, moment=moment, backend=backend)
    per_attacker = base.effective_auditor_utility
    return MultiAttackerSolution(
        base=base,
        n_attackers=n_attackers,
        total_auditor_utility=n_attackers * per_attacker,
        per_attacker_utility=per_attacker,
    )


def minimum_deterrence_budget(
    lambdas: Mapping[int, float],
    payoffs: Mapping[int, PayoffMatrix],
    costs: Mapping[int, float],
    moment: PoissonReciprocalMoment | None = None,
) -> float:
    """Budget needed to deter *all* rational attackers at this state.

    An attacker is deterred only when every type's expected utility is
    negative, i.e. every marginal strictly exceeds its type's deterrence
    threshold ``U_au / (U_au - U_ac)``. With ``theta^t = B^t r(lambda^t)/V^t``
    the cheapest way to reach threshold ``tau_t`` costs
    ``tau_t V^t / r(lambda^t)``, so the total is the sum over types.

    The returned budget achieves attacker utility exactly zero (the paper's
    convention is that a zero-utility attacker still attacks, so any budget
    strictly above this deters; see :meth:`SSESolution.deterred`).
    """
    if not lambdas:
        raise ModelError("at least one alert type is required")
    if moment is None:  # NB: an empty cache is falsy, so `or` would drop it
        moment = PoissonReciprocalMoment()
    total = 0.0
    for type_id, lam in lambdas.items():
        if type_id not in payoffs or type_id not in costs:
            raise ModelError(f"missing payoffs/costs for type {type_id}")
        threshold = payoffs[type_id].deterrence_threshold()
        rate = moment(lam)
        total += threshold * costs[type_id] / rate
    return total
