"""Extensions implementing the paper's "future investigations".

The conclusion of the paper lists three directions; each has a module here:

* :mod:`~repro.extensions.bayesian` — multiple attacker *payoff types* with
  a prior ("SAG can be generalized into Bayesian setting").
* :mod:`~repro.extensions.multi_attacker` — several simultaneous attackers
  ("investigate the situation of multiple attackers").
* :mod:`~repro.extensions.robust` — margins against boundedly rational
  attackers ("a robust version of the SAG should be developed").
"""

from repro.extensions.bayesian import (
    BayesianAttackerModel,
    BayesianGame,
    BayesianSignalingScheme,
    BayesianSSESolution,
    solve_bayesian_ossp,
    solve_bayesian_sse,
)
from repro.extensions.multi_attacker import (
    MultiAttackerSolution,
    minimum_deterrence_budget,
    solve_multi_attacker_sse,
)
from repro.extensions.robust import (
    RobustEvaluation,
    evaluate_against_quantal,
    optimize_margin,
    solve_robust_ossp,
)

__all__ = [
    "BayesianAttackerModel",
    "BayesianGame",
    "BayesianSignalingScheme",
    "BayesianSSESolution",
    "solve_bayesian_ossp",
    "solve_bayesian_sse",
    "MultiAttackerSolution",
    "minimum_deterrence_budget",
    "solve_multi_attacker_sse",
    "RobustEvaluation",
    "evaluate_against_quantal",
    "optimize_margin",
    "solve_robust_ossp",
]
