"""Bayesian SAG: multiple attacker payoff types with a prior.

The paper assumes one fixed attacker payoff structure and notes that "in
practice, there may exist many types of attacker. Thus, SAG can be
generalized into Bayesian setting." This module implements that
generalization for both stages of the pipeline.

**Signaling stage** (:func:`solve_bayesian_ossp`): the auditor knows a
prior over attacker payoff profiles and chooses one joint warning/audit
distribution optimal in expectation. The structural change from LP (3):
each profile ``k`` reacts to the warning according to *its own*
conditional utility, so the auditor effectively chooses which subset of
profiles the warning deters. For each candidate subset ``S`` we solve an
LP with

* quit constraints  ``p1 U^k_ac + q1 U^k_au <= 0``  for ``k in S``,
* proceed constraints ``p1 U^k_ac + q1 U^k_au >= 0`` for ``k not in S``,

and an objective charging deterred profiles only on the silent branch.
The best subset wins — ``2^K`` small LPs, exact and fast for the handful
of profiles that occur in practice.

**Marginal stage** (:func:`solve_bayesian_sse`): the Bayesian analogue of
LP (2). Each attacker profile best-responds to the shared marginals with
its own alert type, so the multiple-LP method enumerates *tuples* of
candidate best responses, one per profile — ``|T|^K`` LPs (Bayesian
Stackelberg games are NP-hard in general; exact enumeration is the honest
baseline and is fine for the 2-3 profiles the domain motivates).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from itertools import combinations, product

from repro.errors import InfeasibleProblemError, ModelError
from repro.core.payoffs import PayoffMatrix
from repro.core.signaling import SignalingScheme
from repro.solvers import LPBuilder, solve
from repro.solvers.registry import DEFAULT_BACKEND


@dataclass(frozen=True)
class BayesianAttackerModel:
    """A prior over attacker payoff profiles for one alert type.

    ``profiles[k]`` is the attacker payoff matrix of profile ``k`` and
    ``prior[k]`` its probability. The auditor's own payoffs are shared
    across profiles (she faces the same damage regardless of who attacks).
    """

    auditor_payoff: PayoffMatrix
    profiles: tuple[PayoffMatrix, ...]
    prior: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.profiles:
            raise ModelError("at least one attacker profile is required")
        if len(self.profiles) != len(self.prior):
            raise ModelError("profiles and prior must have equal length")
        if any(p < 0 for p in self.prior):
            raise ModelError("prior probabilities must be non-negative")
        total = sum(self.prior)
        if abs(total - 1.0) > 1e-9:
            raise ModelError(f"prior must sum to 1, got {total}")

    @property
    def n_profiles(self) -> int:
        return len(self.profiles)


@dataclass(frozen=True)
class BayesianSignalingScheme:
    """The optimal Bayesian scheme plus its supporting data."""

    scheme: SignalingScheme
    deterred_profiles: tuple[int, ...]
    auditor_utility: float


def solve_bayesian_ossp(
    theta: float,
    model: BayesianAttackerModel,
    backend: str = DEFAULT_BACKEND,
) -> BayesianSignalingScheme:
    """Optimal signaling for one alert under attacker-profile uncertainty.

    Enumerates every deterred-subset hypothesis and returns the best
    feasible scheme. Reduces exactly to the classic OSSP when the model has
    a single profile.
    """
    if not 0.0 <= theta <= 1.0:
        raise ModelError(f"theta must lie in [0, 1], got {theta}")
    best: BayesianSignalingScheme | None = None
    indices = range(model.n_profiles)
    for size in range(model.n_profiles + 1):
        for subset in combinations(indices, size):
            candidate = _solve_for_subset(theta, model, frozenset(subset), backend)
            if candidate is None:
                continue
            if best is None or candidate.auditor_utility > best.auditor_utility + 1e-12:
                best = candidate
    if best is None:
        # Unreachable: the empty subset with p1 = q1 = 0 is always feasible.
        raise ModelError("no feasible Bayesian signaling scheme found")
    return best


def _solve_for_subset(
    theta: float,
    model: BayesianAttackerModel,
    deterred: frozenset[int],
    backend: str,
) -> BayesianSignalingScheme | None:
    auditor = model.auditor_payoff
    mass_deterred = sum(model.prior[k] for k in deterred)
    mass_proceeding = 1.0 - mass_deterred

    builder = LPBuilder()
    builder.add_variable("p1", lower=0.0, upper=1.0)
    builder.add_variable("q1", lower=0.0, upper=1.0)
    # Deterred profiles are only exposed to the silent branch; proceeding
    # profiles attack under both branches, contributing the full marginal.
    builder.add_variable(
        "p0", lower=0.0, upper=1.0, objective=mass_deterred * auditor.u_dc
    )
    builder.add_variable(
        "q0", lower=0.0, upper=1.0, objective=mass_deterred * auditor.u_du
    )
    for k, profile in enumerate(model.profiles):
        row = {"p1": profile.u_ac, "q1": profile.u_au}
        if k in deterred:
            builder.add_le(row, 0.0)
            # Participation (see repro.core.signaling.solve_ossp_lp): a
            # warning-deterred profile only attacks at all when its overall
            # expected utility is non-negative.
            builder.add_ge({"p0": profile.u_ac, "q0": profile.u_au}, 0.0)
        else:
            builder.add_ge(row, 0.0)
    builder.add_eq({"p1": 1.0, "p0": 1.0}, theta)
    builder.add_eq({"q1": 1.0, "q0": 1.0}, 1.0 - theta)

    try:
        solution = solve(builder.build(), backend=backend)
    except InfeasibleProblemError:
        return None
    values = solution.as_dict(["p1", "q1", "p0", "q0"])
    scheme = SignalingScheme(
        p1=values["p1"], q1=values["q1"], p0=values["p0"], q0=values["q0"]
    )
    # Objective only covered the deterred mass; add the proceeding mass's
    # constant contribution theta*U_dc + (1-theta)*U_du.
    utility = solution.objective + mass_proceeding * auditor.auditor_utility(theta)
    return BayesianSignalingScheme(
        scheme=scheme,
        deterred_profiles=tuple(sorted(deterred)),
        auditor_utility=float(utility),
    )


@dataclass(frozen=True)
class BayesianGame:
    """A Bayesian SAG over shared alert types.

    Attributes
    ----------
    auditor_payoffs:
        Per-alert-type auditor payoff matrices (``u_dc``/``u_du`` used).
    attacker_payoffs:
        ``attacker_payoffs[k][t]`` is profile ``k``'s payoff matrix for
        alert type ``t`` (``u_ac``/``u_au`` used).
    prior:
        Probability of each attacker profile.
    """

    auditor_payoffs: Mapping[int, PayoffMatrix]
    attacker_payoffs: Sequence[Mapping[int, PayoffMatrix]]
    prior: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.attacker_payoffs:
            raise ModelError("at least one attacker profile is required")
        if len(self.attacker_payoffs) != len(self.prior):
            raise ModelError("attacker_payoffs and prior must have equal length")
        if any(p < 0 for p in self.prior):
            raise ModelError("prior probabilities must be non-negative")
        if abs(sum(self.prior) - 1.0) > 1e-9:
            raise ModelError(f"prior must sum to 1, got {sum(self.prior)}")
        types = set(self.auditor_payoffs)
        if not types:
            raise ModelError("at least one alert type is required")
        for k, profile in enumerate(self.attacker_payoffs):
            if set(profile) != types:
                raise ModelError(
                    f"profile {k} does not cover the auditor's alert types"
                )
        object.__setattr__(self, "auditor_payoffs", dict(self.auditor_payoffs))
        object.__setattr__(
            self,
            "attacker_payoffs",
            tuple(dict(profile) for profile in self.attacker_payoffs),
        )

    @property
    def type_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self.auditor_payoffs))

    @property
    def n_profiles(self) -> int:
        return len(self.attacker_payoffs)


@dataclass(frozen=True)
class BayesianSSESolution:
    """The Bayesian online SSE.

    ``best_responses[k]`` is profile ``k``'s equilibrium alert type, and
    ``attacker_utilities[k]`` its expected utility; ``auditor_utility`` is
    the prior-weighted expectation over profiles.
    """

    thetas: dict[int, float]
    allocations: dict[int, float]
    best_responses: tuple[int, ...]
    auditor_utility: float
    attacker_utilities: tuple[float, ...]
    lps_solved: int
    lps_feasible: int


def solve_bayesian_sse(
    game: BayesianGame,
    budget: float,
    coefficient: Mapping[int, float],
    backend: str = DEFAULT_BACKEND,
    max_profiles: int = 4,
) -> BayesianSSESolution:
    """Bayesian analogue of LP (2) by best-response-tuple enumeration.

    Parameters
    ----------
    game:
        Profiles, priors, payoffs.
    budget:
        Remaining audit budget ``B_tau``.
    coefficient:
        ``theta^t = coefficient[t] * B^t`` — precompute with the Poisson
        reciprocal moments exactly as :func:`repro.core.sse.solve_online_sse`
        does (``r(lambda^t) / V^t``).
    max_profiles:
        Guard against accidental exponential blow-ups (``|T|^K`` LPs).
    """
    if budget < 0:
        raise ModelError(f"budget must be non-negative, got {budget}")
    if game.n_profiles > max_profiles:
        raise ModelError(
            f"{game.n_profiles} attacker profiles would require "
            f"|T|^{game.n_profiles} LPs; raise max_profiles to force this"
        )
    type_ids = game.type_ids
    for t in type_ids:
        if t not in coefficient or coefficient[t] < 0:
            raise ModelError(f"missing/invalid theta coefficient for type {t}")

    best: BayesianSSESolution | None = None
    solved = 0
    feasible = 0
    for tuple_candidate in product(type_ids, repeat=game.n_profiles):
        solved += 1
        solution = _solve_tuple_lp(
            game, budget, coefficient, tuple_candidate, backend
        )
        if solution is None:
            continue
        feasible += 1
        if best is None or solution.auditor_utility > best.auditor_utility + 1e-9:
            best = solution
    if best is None:
        raise ModelError("no feasible best-response tuple; game is ill-formed")
    return BayesianSSESolution(
        thetas=best.thetas,
        allocations=best.allocations,
        best_responses=best.best_responses,
        auditor_utility=best.auditor_utility,
        attacker_utilities=best.attacker_utilities,
        lps_solved=solved,
        lps_feasible=feasible,
    )


def _solve_tuple_lp(
    game: BayesianGame,
    budget: float,
    coefficient: Mapping[int, float],
    responses: tuple[int, ...],
    backend: str,
) -> BayesianSSESolution | None:
    """One LP assuming profile ``k`` best-responds with ``responses[k]``."""
    import math

    type_ids = game.type_ids
    builder = LPBuilder()
    for t in type_ids:
        coef = coefficient[t]
        upper = min(budget, 1.0 / coef if coef > 0 else math.inf)
        builder.add_variable(f"B[{t}]", lower=0.0, upper=upper)

    # Objective: sum_k mu_k * theta^{t_k} * (U_dc - U_du) at t_k. Multiple
    # profiles may share a best-response type; accumulate coefficients.
    objective: dict[str, float] = {}
    constant = 0.0
    for k, t_k in enumerate(responses):
        auditor = game.auditor_payoffs[t_k]
        weight = game.prior[k]
        name = f"B[{t_k}]"
        objective[name] = objective.get(name, 0.0) + (
            weight * coefficient[t_k] * (auditor.u_dc - auditor.u_du)
        )
        constant += weight * auditor.u_du
    for name, value in objective.items():
        builder.set_objective(name, value)

    # Best-response constraints per profile.
    for k, t_k in enumerate(responses):
        profile = game.attacker_payoffs[k]
        pay_k = profile[t_k]
        gap_k = pay_k.u_ac - pay_k.u_au
        for t in type_ids:
            if t == t_k:
                continue
            pay_t = profile[t]
            gap_t = pay_t.u_ac - pay_t.u_au
            builder.add_ge(
                {
                    f"B[{t_k}]": coefficient[t_k] * gap_k,
                    f"B[{t}]": -coefficient[t] * gap_t,
                },
                pay_t.u_au - pay_k.u_au,
            )

    builder.add_le({f"B[{t}]": 1.0 for t in type_ids}, budget)

    result = solve(builder.build(), backend=backend, raise_on_failure=False)
    if not result.status.is_success:
        return None
    values = result.as_dict([f"B[{t}]" for t in type_ids])
    allocations = {t: max(0.0, values[f"B[{t}]"]) for t in type_ids}
    thetas = {t: min(1.0, coefficient[t] * allocations[t]) for t in type_ids}
    auditor_utility = sum(
        game.prior[k] * game.auditor_payoffs[t_k].auditor_utility(thetas[t_k])
        for k, t_k in enumerate(responses)
    )
    attacker_utilities = tuple(
        game.attacker_payoffs[k][t_k].attacker_utility(thetas[t_k])
        for k, t_k in enumerate(responses)
    )
    return BayesianSSESolution(
        thetas=thetas,
        allocations=allocations,
        best_responses=responses,
        auditor_utility=float(auditor_utility),
        attacker_utilities=attacker_utilities,
        lps_solved=1,
        lps_feasible=1,
    )
