"""Robust OSSP against boundedly rational attackers.

The classic OSSP makes the warned attacker's conditional utility *exactly*
zero (the quit constraint is tight at the optimum). A perfectly rational
attacker quits at zero, but a noisy (quantal-response) attacker proceeds
with probability ~1/2 at the boundary — the "unexpected loss in practice"
the paper's conclusion warns about.

The robust OSSP hardens the quit constraint to

    p1 * U_ac + q1 * U_au <= -margin * |U_au|

trading a little deterministic utility (the warning branch must be made
genuinely unattractive, which costs silent-branch mass) for robustness.
:func:`optimize_margin` picks the margin maximizing the auditor's expected
utility against a :class:`~repro.audit.attacker.QuantalResponseAttacker`
of known rationality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.audit.attacker import QuantalResponseAttacker
from repro.core.payoffs import PayoffMatrix
from repro.core.signaling import SignalingScheme
from repro.solvers import LPBuilder, solve
from repro.solvers.registry import DEFAULT_BACKEND


def solve_robust_ossp(
    theta: float,
    payoff: PayoffMatrix,
    margin: float,
    backend: str = DEFAULT_BACKEND,
) -> SignalingScheme:
    """LP (3) with a hardened quit constraint.

    ``margin`` is expressed as a fraction of ``|U_au|``; 0 recovers the
    classic OSSP.

    The deepest credible margin is bounded by the audit mass available:
    with the whole marginal behind the warning (``p1 = theta, q1 = 0``) the
    warned attacker's utility is ``theta * U_ac``, so margins beyond
    ``theta * |U_ac| / |U_au|`` are unattainable and are clamped to that
    maximum (the scheme "hardens as much as the coverage supports").
    """
    if not 0.0 <= theta <= 1.0:
        raise ModelError(f"theta must lie in [0, 1], got {theta}")
    if margin < 0:
        raise ModelError(f"margin must be non-negative, got {margin}")
    max_margin = theta * abs(payoff.u_ac) / abs(payoff.u_au)
    margin = min(margin, max(0.0, max_margin - 1e-12))
    builder = LPBuilder()
    builder.add_variable("p1", lower=0.0, upper=1.0)
    builder.add_variable("q1", lower=0.0, upper=1.0)
    builder.add_variable("p0", lower=0.0, upper=1.0, objective=payoff.u_dc)
    builder.add_variable("q0", lower=0.0, upper=1.0, objective=payoff.u_du)
    builder.add_le(
        {"p1": payoff.u_ac, "q1": payoff.u_au}, -margin * abs(payoff.u_au)
    )
    # Participation (see solve_ossp_lp): the unwarned attacker must still be
    # willing to attack, otherwise the objective value is vacuous.
    builder.add_ge({"p0": payoff.u_ac, "q0": payoff.u_au}, 0.0)
    builder.add_eq({"p1": 1.0, "p0": 1.0}, theta)
    builder.add_eq({"q1": 1.0, "q0": 1.0}, 1.0 - theta)
    solution = solve(builder.build(), backend=backend)
    values = solution.as_dict(["p1", "q1", "p0", "q0"])
    return SignalingScheme(
        p1=values["p1"], q1=values["q1"], p0=values["p0"], q0=values["q0"]
    )


def evaluate_against_quantal(
    scheme: SignalingScheme,
    payoff: PayoffMatrix,
    attacker: QuantalResponseAttacker,
) -> float:
    """Auditor expected utility when the warned attacker is noisy.

    The attacker proceeds after a warning with the quantal probability
    ``pi``; branch-by-branch:

    * ``p1`` (warn, audit):   proceeds -> ``U_dc``, quits -> 0;
    * ``q1`` (warn, free):    proceeds -> ``U_du``, quits -> 0;
    * ``p0``/``q0`` (silent): always proceeds.
    """
    proceed = attacker.proceed_probability(scheme, payoff)
    return (
        proceed * (scheme.p1 * payoff.u_dc + scheme.q1 * payoff.u_du)
        + scheme.p0 * payoff.u_dc
        + scheme.q0 * payoff.u_du
    )


@dataclass(frozen=True)
class RobustEvaluation:
    """Outcome of a robust-margin search."""

    margin: float
    scheme: SignalingScheme
    utility_vs_quantal: float
    classic_utility_vs_quantal: float

    @property
    def robustness_gain(self) -> float:
        """How much the hardened margin improves on the classic OSSP
        against the noisy attacker."""
        return self.utility_vs_quantal - self.classic_utility_vs_quantal


def optimize_margin(
    theta: float,
    payoff: PayoffMatrix,
    attacker: QuantalResponseAttacker,
    margins: tuple[float, ...] = tuple(np.linspace(0.0, 0.5, 26)),
    backend: str = DEFAULT_BACKEND,
) -> RobustEvaluation:
    """Grid-search the margin maximizing utility against ``attacker``."""
    if not margins:
        raise ModelError("margin grid must be non-empty")
    classic = solve_robust_ossp(theta, payoff, 0.0, backend=backend)
    classic_value = evaluate_against_quantal(classic, payoff, attacker)
    best_margin = 0.0
    best_scheme = classic
    best_value = classic_value
    for margin in margins:
        scheme = solve_robust_ossp(theta, payoff, float(margin), backend=backend)
        value = evaluate_against_quantal(scheme, payoff, attacker)
        if value > best_value + 1e-12:
            best_margin = float(margin)
            best_scheme = scheme
            best_value = value
    return RobustEvaluation(
        margin=best_margin,
        scheme=best_scheme,
        utility_vs_quantal=best_value,
        classic_utility_vs_quantal=classic_value,
    )
