"""The vectorized solving engine.

Three layers stacked on top of :mod:`repro.core` and :mod:`repro.solvers`
(see ``ARCHITECTURE.md`` at the repository root):

* :mod:`repro.engine.analytic` — the ``"analytic"`` solver backend: all |T|
  candidate LPs of the multiple-LP SSE method evaluated as stacked NumPy
  arrays in one closed-form water-filling pass.
* :mod:`repro.engine.cache` — a state-keyed :class:`SSESolutionCache` with
  configurable ``(budget, lambdas)`` quantization (step 0 = exact hits) and
  reconciling hit/miss counters.
* :mod:`repro.engine.stream` — :class:`BatchAuditEngine`, which consumes
  whole alert streams, drives the game with the cached analytic solver,
  evaluates the Theorem-3 closed-form OSSP over alert batches, and reports
  per-cycle :class:`EngineStats`.
"""

from repro.engine.analytic import solve_multiple_lp_analytic
from repro.engine.cache import CacheStats, SSESolutionCache
from repro.engine.stream import (
    BatchAuditEngine,
    EngineStats,
    StreamResult,
    analytic_config,
    batch_closed_form_ossp,
    batch_ossp_auditor_utility,
    batch_sse_auditor_utility,
)

__all__ = [
    "BatchAuditEngine",
    "CacheStats",
    "EngineStats",
    "SSESolutionCache",
    "StreamResult",
    "analytic_config",
    "batch_closed_form_ossp",
    "batch_ossp_auditor_utility",
    "batch_sse_auditor_utility",
    "solve_multiple_lp_analytic",
]
