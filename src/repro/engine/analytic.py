"""Vectorized analytic fast path for LP (2) — every candidate LP in one pass.

The per-candidate LP of the multiple-LP method has small, fixed structure.
Writing ``theta^t = coef_t * B^t`` (``coef_t`` maps a budget share to the
induced marginal), candidate ``c``'s LP is

    maximize   theta^c * (U_dc^c - U_du^c)
    subject to A_t(theta^t) <= A_c(theta^c)   for every t != c
               sum_t theta^t / coef_t <= budget
               0 <= theta^t <= min(1, coef_t * budget)

where ``A_t(x) = U_au^t + x * (U_ac^t - U_au^t)`` is the attacker's expected
utility against coverage ``x`` of type ``t`` (strictly decreasing: getting
caught hurts). Two observations turn this into a closed-form water-filling:

1. The objective is strictly increasing in ``theta^c`` alone
   (``U_dc >= 0 > U_du``), so the optimum maximizes ``theta^c`` and grants
   every other type exactly its cheapest feasible coverage.
2. Each best-response constraint is a *lower* bound on ``theta^t`` that
   rises linearly with ``theta^c``:

       theta^t >= L_t(theta^c) = a_t + b_t * theta^c,
       a_t = (U_au^t - U_au^c) / (U_au^t - U_ac^t),
       b_t = (U_ac^c - U_au^c) / (U_ac^t - U_au^t) > 0.

   Hence the minimum budget needed to support coverage ``x`` of the
   candidate,

       g(x) = x / coef_c + sum_{t != c} max(0, L_t(x)) / coef_t,

   is piecewise-linear and non-decreasing, the feasible ``x`` form an
   interval ``[0, x*]``, and ``x*`` is found *exactly* by evaluating ``g``
   at its breakpoints (where some ``L_t`` crosses zero) and interpolating
   on the crossing segment.

All |T| candidate LPs share the same data, so the whole computation stacks
into (|T| x |T|) arrays — one NumPy pass replaces |T| generic LP solves.
The result is a regular :class:`~repro.core.sse.SSESolution` with the same
feasibility accounting and tie-breaking as the LP path, and the property
suite cross-validates objective values, best responses, and best-response
marginals against scipy/HiGHS.

Equivalence caveat: only the *best-response* marginal is pinned by the
optimum. The other types' marginals are degenerate (the objective ignores
them, the budget constraint is an inequality), so LP vertices may spread
slack budget over them arbitrarily while this solver grants each exactly
its minimal supporting coverage. Equilibrium value, best response, and
feasibility coincide; the audit probability committed to a
*non-best-response* alert can differ between backends — both choices are
optimal, but they are different optima.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.core.payoffs import PayoffMatrix
from repro.core.sse import (
    _TIE_TOL,
    SSESolution,
    build_certificate,
    select_candidate,
)

#: Feasibility slack, matching the LP path's tolerance scale.
_FEAS_TOL = 1e-9


def solve_multiple_lp_analytic(
    budget: float,
    coefficient: Mapping[int, float],
    payoffs: Mapping[int, PayoffMatrix],
) -> SSESolution:
    """Solve the multiple-LP SSE analytically, all candidates stacked.

    Drop-in replacement for the per-candidate LP loop of
    :func:`repro.core.sse.solve_multiple_lp`: same inputs, same
    :class:`~repro.core.sse.SSESolution` semantics (feasibility counters,
    strong-Stackelberg tie-breaking), computed without a generic LP solver.
    """
    type_ids = sorted(coefficient)
    n = len(type_ids)
    coef = np.array([float(coefficient[t]) for t in type_ids])
    if np.any(coef < 0) or not np.all(np.isfinite(coef)):
        raise ModelError("theta coefficients must be finite and non-negative")
    u_dc = np.array([payoffs[t].u_dc for t in type_ids])
    u_du = np.array([payoffs[t].u_du for t in type_ids])
    u_ac = np.array([payoffs[t].u_ac for t in type_ids])
    u_au = np.array([payoffs[t].u_au for t in type_ids])
    gap = u_ac - u_au  # strictly negative under the sign conventions

    # Budget share per unit of coverage; a zero coefficient pins theta at 0
    # (its budget shares buy no coverage), encoded as a zero inverse.
    positive = coef > 0.0
    inv_coef = np.where(positive, 1.0 / np.where(positive, coef, 1.0), 0.0)

    # Row c, column t: theta^t >= a[c, t] + b[c, t] * theta^c  (t != c).
    a = (u_au[None, :] - u_au[:, None]) / (-gap)[None, :]
    b = gap[:, None] / gap[None, :]
    off = ~np.eye(n, dtype=bool)

    # Box feasibility caps on theta^c: the candidate's own bound, plus for
    # every other type the point where its required coverage would exceed
    # what its box allows (1, or 0 when its coefficient cannot buy any).
    own_cap = np.minimum(1.0, coef * budget)
    theta_box = np.where(positive, 1.0, 0.0)
    cross_cap = np.where(off, (theta_box[None, :] - a) / b, np.inf)
    x_cap = np.minimum(own_cap, cross_cap.min(axis=1, initial=np.inf))

    feasible = x_cap >= -_FEAS_TOL
    x_cap = np.clip(x_cap, 0.0, None)

    # Breakpoints of g: where each support requirement L_t activates.
    act = np.where(off & (a < 0.0), -a / b, 0.0)
    act = np.clip(act, 0.0, x_cap[:, None])
    points = np.sort(
        np.concatenate([np.zeros((n, 1)), act, x_cap[:, None]], axis=1), axis=1
    )

    # g at every breakpoint, every candidate at once: (n, n + 2).
    support = np.clip(a[:, None, :] + b[:, None, :] * points[:, :, None], 0.0, None)
    support = np.where(off[:, None, :], support, 0.0)
    g = points * inv_coef[:, None] + np.einsum("ckt,t->ck", support, inv_coef)

    feasible &= g[:, 0] <= budget + _FEAS_TOL

    # Largest breakpoint still within budget, then interpolate on the
    # crossing segment (g is linear between consecutive breakpoints).
    n_points = points.shape[1]
    k = np.clip(np.sum(g <= budget + _FEAS_TOL, axis=1) - 1, 0, n_points - 1)
    rows = np.arange(n)
    x_lo, g_lo = points[rows, k], g[rows, k]
    k_next = np.minimum(k + 1, n_points - 1)
    x_hi, g_hi = points[rows, k_next], g[rows, k_next]
    dg = g_hi - g_lo
    with np.errstate(divide="ignore", invalid="ignore"):
        step = np.where(dg > 0.0, (budget - g_lo) * (x_hi - x_lo) / dg, 0.0)
    x_star = np.where(
        k == n_points - 1, x_lo, np.clip(x_lo + step, x_lo, x_hi)
    )
    x_star = np.where(feasible, x_star, 0.0)

    auditor = u_du + x_star * (u_dc - u_du)
    attacker = u_au + x_star * gap

    winner = select_candidate(
        [
            (type_ids[i], float(auditor[i]), float(attacker[i]))
            for i in range(n)
            if feasible[i]
        ]
    )
    if winner is None:
        # Unreachable in a well-formed game: the all-zero allocation is
        # always feasible for the type maximizing the uncovered payoff.
        raise ModelError("no feasible best-response LP; game is ill-formed")
    best = type_ids.index(winner)

    thetas = np.clip(a[best] + b[best] * x_star[best], 0.0, 1.0)
    thetas[best] = x_star[best]
    thetas = np.where(positive, thetas, 0.0)
    allocations = thetas * inv_coef
    return SSESolution(
        thetas={t: float(thetas[i]) for i, t in enumerate(type_ids)},
        allocations={t: float(allocations[i]) for i, t in enumerate(type_ids)},
        best_response=winner,
        auditor_utility=float(auditor[best]),
        attacker_utility=float(attacker[best]),
        lps_solved=n,
        lps_feasible=int(np.count_nonzero(feasible)),
        certificate=build_certificate(
            budget,
            coefficient,
            payoffs,
            {
                t: float(auditor[i]) if feasible[i] else None
                for i, t in enumerate(type_ids)
            },
            winner,
        ),
    )


@dataclass(frozen=True)
class GridSolution:
    """One stacked analytic solve over a (rate-column x budget) grid.

    Everything :func:`solve_multiple_lp_analytic` derives for a single
    state, evaluated for ``K`` coefficient vectors ("columns") crossed with
    ``N`` budgets in one NumPy pass. The per-candidate water-filling
    geometry splits into a budget-independent part shared by every column
    (the bound lines ``a``/``b``, the coverage breakpoints ``xs`` and box
    cap ``x_cap`` — pure payoff algebra, since theta coefficients are
    strictly positive) and a per-column part (``g`` evaluated at the
    breakpoints, weighted by that column's reciprocal coefficients). The
    compiled policy table serves *exact* per-state solutions from ``g``
    alone; the dense per-grid-point arrays certify cells and back the
    stored decision tables.

    Attributes
    ----------
    type_ids:
        Sorted alert types; every candidate axis is ordered by this.
    budgets:
        The budget grid, ascending, shape ``(N,)``.
    a, b:
        Best-response lower-bound lines, shape ``(n, n)`` (row: candidate).
    xs:
        Candidate coverage breakpoints, shape ``(n, n + 2)``, ascending.
    x_cap:
        Budget-independent coverage cap per candidate, shape ``(n,)``.
    g:
        Budget needed to support each coverage breakpoint, per column:
        shape ``(K, n, n + 2)``; ``g[:, :, 0]`` is the candidate's entry
        cost (budget needed for its cheapest feasible allocation).
    feasible:
        Shape ``(K, n, N)``; candidate feasibility at each grid state.
    x_star:
        Optimal candidate coverage at each grid state, shape ``(K, n, N)``.
    values / attacker:
        Auditor / attacker utilities at ``x_star`` (auditor ``-inf`` when
        infeasible), shape ``(K, n, N)``.
    winners:
        Canonical winning-candidate *index* per grid state (same
        tie-breaking as :func:`~repro.core.sse.select_candidate`), shape
        ``(K, N)``.
    """

    type_ids: tuple[int, ...]
    budgets: np.ndarray
    a: np.ndarray
    b: np.ndarray
    xs: np.ndarray
    x_cap: np.ndarray
    g: np.ndarray
    feasible: np.ndarray
    x_star: np.ndarray
    values: np.ndarray
    attacker: np.ndarray
    winners: np.ndarray


def solve_grid_analytic(
    budgets: np.ndarray,
    coefficients: np.ndarray,
    payoffs: Mapping[int, PayoffMatrix],
    type_ids: Sequence[int] | None = None,
) -> GridSolution:
    """Solve the multiple-LP SSE over a whole state grid in one pass.

    ``budgets`` is the ascending budget axis (shape ``(N,)``);
    ``coefficients`` holds one strictly-positive theta-coefficient vector
    per rate column (shape ``(K, n)``, columns ordered by sorted type id).
    The result covers all ``K x N`` states. Memory scales as
    ``K * n * N``; chunk the columns for large grids.
    """
    if type_ids is None:
        type_ids = sorted(payoffs)
    type_ids = tuple(type_ids)
    n = len(type_ids)
    budgets = np.asarray(budgets, dtype=float)
    coef = np.asarray(coefficients, dtype=float)
    if coef.ndim != 2 or coef.shape[1] != n:
        raise ModelError(
            f"coefficients must have shape (K, {n}), got {coef.shape}"
        )
    if np.any(coef <= 0.0) or not np.all(np.isfinite(coef)):
        raise ModelError("grid theta coefficients must be finite and positive")
    if budgets.ndim != 1 or budgets.size < 1 or np.any(np.diff(budgets) <= 0):
        raise ModelError("budgets must be a strictly increasing 1-D grid")

    u_dc = np.array([payoffs[t].u_dc for t in type_ids])
    u_du = np.array([payoffs[t].u_du for t in type_ids])
    u_au = np.array([payoffs[t].u_au for t in type_ids])
    gap = np.array([payoffs[t].u_ac for t in type_ids]) - u_au

    # Budget-independent geometry (coefficients are positive, so every
    # theta box is [0, 1] and the cross caps are pure payoff algebra).
    a = (u_au[None, :] - u_au[:, None]) / (-gap)[None, :]
    b = gap[:, None] / gap[None, :]
    off = ~np.eye(n, dtype=bool)
    cross_cap = np.where(off, (1.0 - a) / b, np.inf)
    x_cap_raw = np.minimum(1.0, cross_cap.min(axis=1, initial=np.inf))
    feasible_cap = x_cap_raw >= -_FEAS_TOL
    x_cap = np.clip(x_cap_raw, 0.0, None)

    act = np.where(off & (a < 0.0), -a / b, 0.0)
    act = np.clip(act, 0.0, x_cap[:, None])
    xs = np.sort(
        np.concatenate([np.zeros((n, 1)), act, x_cap[:, None]], axis=1), axis=1
    )
    m = xs.shape[1]

    # Support tensor S[c, k, t]: coverage type t must carry when candidate
    # c sits at breakpoint xs[c, k] (own coverage on the diagonal). One
    # einsum against each column's reciprocal coefficients yields g.
    support = np.clip(a[:, None, :] + b[:, None, :] * xs[:, :, None], 0.0, None)
    support = np.where(off[:, None, :], support, 0.0)
    diag = np.arange(n)
    support[diag, :, diag] = xs  # own coverage on the diagonal
    inv_coef = 1.0 / coef  # (K, n)
    g = np.einsum("ckt,jt->jck", support, inv_coef)  # (K, n, m)

    entry = g[:, :, 0]
    feasible = feasible_cap[None, :, None] & (
        entry[:, :, None] <= budgets[None, None, :] + _FEAS_TOL
    )

    # Largest breakpoint within budget, then segment interpolation — the
    # same water-filling inversion as the single-state path, broadcast.
    idx = np.clip(
        np.sum(g[:, :, :, None] <= budgets[None, None, None, :] + _FEAS_TOL, axis=2)
        - 1,
        0,
        m - 1,
    )  # (K, n, N)
    xs_cols = np.broadcast_to(xs[None, :, :], g.shape)
    x_lo = np.take_along_axis(xs_cols, idx, axis=2)
    g_lo = np.take_along_axis(g, idx, axis=2)
    idx_next = np.minimum(idx + 1, m - 1)
    x_hi = np.take_along_axis(xs_cols, idx_next, axis=2)
    g_hi = np.take_along_axis(g, idx_next, axis=2)
    dg = g_hi - g_lo
    with np.errstate(divide="ignore", invalid="ignore"):
        step = np.where(
            dg > 0.0, (budgets[None, None, :] - g_lo) * (x_hi - x_lo) / dg, 0.0
        )
    x_star = np.where(idx == m - 1, x_lo, np.clip(x_lo + step, x_lo, x_hi))
    x_star = np.where(feasible, x_star, 0.0)

    values = np.where(
        feasible,
        u_du[None, :, None] + x_star * (u_dc - u_du)[None, :, None],
        -np.inf,
    )
    attacker = u_au[None, :, None] + x_star * gap[None, :, None]

    # select_candidate, vectorized: value ties within _TIE_TOL, then least
    # attacker utility within _TIE_TOL, then smallest type id (= smallest
    # index, since type_ids is sorted).
    best = values.max(axis=1, keepdims=True)
    tied = values >= best - _TIE_TOL
    att_masked = np.where(tied, attacker, np.inf)
    least = att_masked.min(axis=1, keepdims=True)
    tied &= att_masked <= least + _TIE_TOL
    winners = tied.argmax(axis=1).astype(np.int16)

    return GridSolution(
        type_ids=type_ids,
        budgets=budgets,
        a=a,
        b=b,
        xs=xs,
        x_cap=x_cap,
        g=g,
        feasible=feasible,
        x_star=x_star,
        values=values,
        attacker=attacker,
        winners=winners,
    )


def refine_candidate_solution(
    candidate: int,
    budget: float,
    coefficient: Mapping[int, float],
    payoffs: Mapping[int, PayoffMatrix],
) -> SSESolution | None:
    """Exact water-filling for one known candidate — the cache's hit path.

    When the error-bounded cache certifies that a cached solution's
    winning candidate is still (near-)optimal at a queried state, the
    equilibrium there does not need the full stacked solve: re-running the
    closed-form water-filling for that single candidate at the *queried*
    budget and coefficients yields the exact per-candidate optimum in
    ``O(|T|)`` scalar work. Returns ``None`` when the candidate is
    infeasible at this state (the caller then falls back to a full solve).

    The returned solution reports ``lps_solved == lps_feasible == 1`` —
    the actual work performed — and carries no certificate (refined
    solutions are served, never cached).
    """
    type_ids = sorted(coefficient)
    pay_c = payoffs[candidate]
    coef_c = float(coefficient[candidate])
    gap_c = pay_c.u_ac - pay_c.u_au

    # Lower-bound lines theta^t >= a_t + b_t * x and the candidate's cap.
    lines: list[tuple[int, float, float]] = []
    x_cap = min(1.0, coef_c * budget) if coef_c > 0.0 else 0.0
    for t in type_ids:
        if t == candidate:
            continue
        pay_t = payoffs[t]
        gap_t = pay_t.u_ac - pay_t.u_au
        a_t = (pay_t.u_au - pay_c.u_au) / (-gap_t)
        b_t = gap_c / gap_t
        lines.append((t, a_t, b_t))
        box = 1.0 if coefficient[t] > 0.0 else 0.0
        x_cap = min(x_cap, (box - a_t) / b_t)
    if x_cap < -_FEAS_TOL:
        return None
    x_cap = max(0.0, x_cap)

    inv = {
        t: 1.0 / coefficient[t] if coefficient[t] > 0.0 else 0.0
        for t in type_ids
    }

    def g(x: float) -> float:
        total = x * (inv[candidate] if coef_c > 0.0 else 0.0)
        for t, a_t, b_t in lines:
            total += max(0.0, a_t + b_t * x) * inv[t]
        return total

    if g(0.0) > budget + _FEAS_TOL:
        return None

    points = sorted(
        {0.0, x_cap}
        | {
            min(x_cap, max(0.0, -a_t / b_t))
            for _, a_t, b_t in lines
            if a_t < 0.0
        }
    )
    x_star = 0.0
    for lo, hi in zip(points, points[1:]):
        g_lo, g_hi = g(lo), g(hi)
        if g_hi <= budget + _FEAS_TOL:
            x_star = hi
            continue
        if g_hi > g_lo:
            x_star = min(
                hi, max(lo, lo + (budget - g_lo) * (hi - lo) / (g_hi - g_lo))
            )
        break
    else:
        x_star = points[-1] if points else 0.0

    thetas = {}
    for t, a_t, b_t in lines:
        theta = min(1.0, max(0.0, a_t + b_t * x_star))
        thetas[t] = theta if coefficient[t] > 0.0 else 0.0
    thetas[candidate] = x_star
    return SSESolution(
        thetas=thetas,
        allocations={t: thetas[t] * inv[t] for t in type_ids},
        best_response=candidate,
        auditor_utility=pay_c.auditor_utility(x_star),
        attacker_utility=pay_c.attacker_utility(x_star),
        lps_solved=1,
        lps_feasible=1,
    )
