"""Randomized differential conformance: backends and the solution cache.

The solving stack offers three interchangeable LP (2) backends —
``scipy`` (HiGHS), ``simplex`` (the in-tree dense simplex), and
``analytic`` (the vectorized water-filling of
:mod:`repro.engine.analytic`) — plus a solution cache whose certified
adaptive mode re-serves solutions across nearby states. Interchangeable
is a *contract*, not a hope: this module checks it differentially.

Part A — backend conformance. Random games (sign-convention-respecting
payoffs, occasionally near-degenerate duplicated types to stress the
tie-break rule) are solved at random states through every backend, and
each pair must agree on

* the equilibrium game value (``auditor_utility``),
* the attacker's equilibrium utility,
* the best-response type (an exact match — the shared canonical
  tie-break of :func:`repro.core.sse.select_candidate` makes this
  well-defined even under degeneracy), and
* **every** marginal ``theta^t`` — not only the best response's, because
  the LP path canonicalizes its degenerate non-best-response marginals to
  the minimal supporting coverage, the same optimum the analytic solver
  returns,

within :data:`VALUE_TOL` / :data:`THETA_TOL`.

Part B — cache conformance. One synthetic alert stream is replayed
through an uncached analytic game and through cached games at several
cache policies. For certified policies (``error_budget`` set) the
realized per-alert game-value error must stay within
``error_budget + VALUE_TOL`` — the end-to-end check that the per-state
certificates (margins, Lipschitz bounds, feasibility slacks) are sound.
The legacy lossy policy (``error_budget=None``) is replayed too and its
realized error *reported* for contrast, but not gated — it is the
unbounded mode this harness exists to fence off.

Part C — policy-table conformance. The same stream replays through the
engine in four configurations — plain analytic, cached analytic,
compiled policy table, and a *floored* table whose compiled budget grid
deliberately stops above the stream's realized exhaustion point, so a
large tail of out-of-region states exercises the fallback path. Every
table configuration is compared pairwise against the analytic and the
cached replays on per-alert game values (gated at
``error_budget + VALUE_TOL``, the same certified bound as Part B) *and*
equilibrium marginals (gated at :data:`THETA_TOL`); the floored run must
additionally report a non-empty fallback count, or the out-of-region
coverage silently vanished.

Part D — fictitious-play conformance. The ``fictitious_play`` backend
(:mod:`repro.learning.fictitious_play`) proposes candidates through
learning dynamics but refines every surviving candidate exactly, so it
must agree with the LP backends to the *same* tolerances as Part A —
not a looser "learning" bound. Random **zero-sum** instances
(``u_dc = -u_ac``, ``u_du = -u_au``, the classical fictitious-play
convergence regime) are solved at random states and compared pairwise
against every Part A backend on values, attacker utilities, best
responses, and all marginals. The raw dynamics are additionally run on
their own and gated on the normalized exploitability gap reaching
:data:`FP_GAP_TOL` within :data:`FP_DYNAMICS_ITERATIONS` iterations —
the convergence property the learning loop and the benchmark rely on.

Run it from the command line (CI does, in quick mode)::

    PYTHONPATH=src python -m repro.engine.conformance [--quick] [--out PATH]

The process exits non-zero if any gated check fails, and ``--out`` writes
the machine-readable report.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import sys
from dataclasses import dataclass, field
from itertools import combinations
from typing import Any

import numpy as np

from repro.core.game import CHARGE_EXPECTED, SAGConfig, SignalingAuditGame
from repro.core.payoffs import PayoffMatrix
from repro.core.sse import GameState, solve_online_sse
from repro.engine.cache import (
    DEFAULT_ADAPTIVE_BUDGET_STEP,
    DEFAULT_ADAPTIVE_RATE_STEP,
    DEFAULT_ERROR_BUDGET,
    SSESolutionCache,
)
from repro.stats.diurnal import SECONDS_PER_DAY
from repro.stats.estimator import FutureAlertEstimator, RollbackEstimator

#: Backends under differential test.
BACKENDS = ("scipy", "simplex", "analytic")

#: The learning-dynamics backend Part D compares against each of BACKENDS.
FP_BACKEND = "fictitious_play"

#: Absolute tolerance for utilities (auditor/attacker game values).
VALUE_TOL = 1e-6
#: Absolute tolerance for marginal audit probabilities.
THETA_TOL = 1e-6

#: Normalized exploitability gap the raw fictitious-play dynamics must
#: reach on zero-sum instances (Part D), and the iteration cap they get.
FP_GAP_TOL = 1e-3
FP_DYNAMICS_ITERATIONS = 4000

#: Cache policies replayed in Part B: (budget_step, rate_step, error_budget).
#: The first is the default certified adaptive policy; the ``None`` entry
#: is the legacy lossy mode, reported but not gated.
CACHE_POLICIES: tuple[tuple[float, float, float | None], ...] = (
    (DEFAULT_ADAPTIVE_BUDGET_STEP, DEFAULT_ADAPTIVE_RATE_STEP, DEFAULT_ERROR_BUDGET),
    (1.0, 2.0, DEFAULT_ERROR_BUDGET),
    (DEFAULT_ADAPTIVE_BUDGET_STEP, DEFAULT_ADAPTIVE_RATE_STEP, 0.0),
    (DEFAULT_ADAPTIVE_BUDGET_STEP, DEFAULT_ADAPTIVE_RATE_STEP, None),
)


@dataclass
class PairResult:
    """Worst observed disagreement between one pair of backends."""

    first: str
    second: str
    states: int = 0
    max_value_gap: float = 0.0
    max_attacker_gap: float = 0.0
    max_theta_gap: float = 0.0
    best_response_mismatches: int = 0

    @property
    def passed(self) -> bool:
        return (
            self.max_value_gap <= VALUE_TOL
            and self.max_attacker_gap <= VALUE_TOL
            and self.max_theta_gap <= THETA_TOL
            and self.best_response_mismatches == 0
        )


@dataclass
class CachePolicyResult:
    """One cache policy's realized error against the uncached replay."""

    budget_step: float
    rate_step: float
    error_budget: float | None
    n_alerts: int = 0
    hit_rate: float = 0.0
    refinements: int = 0
    max_realized_error: float = 0.0
    mean_realized_error: float = 0.0

    @property
    def gated(self) -> bool:
        """Only certified policies are pass/fail; lossy ones are FYI."""
        return self.error_budget is not None

    @property
    def passed(self) -> bool:
        if not self.gated:
            return True
        return self.max_realized_error <= self.error_budget + VALUE_TOL


@dataclass
class TableConfigResult:
    """One policy-table replay's pairwise agreement (Part C).

    ``expect_fallbacks`` marks the floored configuration: its compiled
    region excludes the stream's low-budget tail on purpose, so zero
    fallbacks would mean the out-of-region path went untested.
    """

    label: str
    error_budget: float
    n_alerts: int = 0
    table_hits: int = 0
    fallbacks: int = 0
    expect_fallbacks: bool = False
    max_value_gap_vs_analytic: float = 0.0
    max_theta_gap_vs_analytic: float = 0.0
    max_value_gap_vs_cached: float = 0.0
    max_theta_gap_vs_cached: float = 0.0

    @property
    def passed(self) -> bool:
        bound = self.error_budget + VALUE_TOL
        if self.expect_fallbacks and self.fallbacks == 0:
            return False
        return (
            self.max_value_gap_vs_analytic <= bound
            and self.max_value_gap_vs_cached <= bound
            and self.max_theta_gap_vs_analytic <= THETA_TOL
            and self.max_theta_gap_vs_cached <= THETA_TOL
        )


@dataclass
class FPDynamicsResult:
    """Aggregate convergence of the raw fictitious-play dynamics (Part D).

    Every zero-sum instance must reach a normalized exploitability gap of
    :data:`FP_GAP_TOL` within :data:`FP_DYNAMICS_ITERATIONS` iterations;
    the worst gap and iteration count are reported for trend-watching.
    """

    instances: int = 0
    converged: int = 0
    max_gap: float = 0.0
    max_iterations_used: int = 0
    gap_tol: float = FP_GAP_TOL

    @property
    def passed(self) -> bool:
        return self.instances > 0 and self.converged == self.instances


@dataclass
class ConformanceReport:
    """Machine-readable outcome of one conformance run."""

    seed: int
    quick: bool
    n_games: int
    n_states: int
    pairs: list[PairResult] = field(default_factory=list)
    cache: list[CachePolicyResult] = field(default_factory=list)
    table: list[TableConfigResult] = field(default_factory=list)
    fp_pairs: list[PairResult] = field(default_factory=list)
    fp_dynamics: list[FPDynamicsResult] = field(default_factory=list)
    failures: list[dict[str, Any]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return (
            all(pair.passed for pair in self.pairs)
            and all(policy.passed for policy in self.cache)
            and all(config.passed for config in self.table)
            and all(pair.passed for pair in self.fp_pairs)
            and all(dyn.passed for dyn in self.fp_dynamics)
        )

    def to_dict(self) -> dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["passed"] = self.passed
        payload["tolerances"] = {
            "value": VALUE_TOL, "theta": THETA_TOL, "fp_gap": FP_GAP_TOL,
        }
        payload["backends"] = list(BACKENDS)
        payload["fp_backend"] = FP_BACKEND
        for entry, pair in zip(payload["pairs"], self.pairs):
            entry["passed"] = pair.passed
        for entry, policy in zip(payload["cache"], self.cache):
            entry["passed"] = policy.passed
            entry["gated"] = policy.gated
        for entry, config in zip(payload["table"], self.table):
            entry["passed"] = config.passed
        for entry, pair in zip(payload["fp_pairs"], self.fp_pairs):
            entry["passed"] = pair.passed
        for entry, dyn in zip(payload["fp_dynamics"], self.fp_dynamics):
            entry["passed"] = dyn.passed
        return payload


def random_game(
    rng: np.random.Generator, n_types: int | None = None, degenerate: bool = False
) -> tuple[dict[int, PayoffMatrix], dict[int, float]]:
    """A random game honoring the paper's sign conventions.

    Payoffs also satisfy the Theorem 3 condition
    ``U_ac U_du - U_dc U_au > 0`` so the same games can drive the full
    signaling pipeline. With ``degenerate=True`` one type is duplicated
    with jitter at the ``1e-9`` scale — the near-ties the canonical
    tie-break must resolve identically across backends.
    """
    if n_types is None:
        n_types = int(rng.integers(2, 7))
    payoffs: dict[int, PayoffMatrix] = {}
    costs: dict[int, float] = {}
    for type_id in range(1, n_types + 1):
        for _ in range(64):
            candidate = PayoffMatrix(
                u_dc=float(rng.uniform(0.0, 600.0)),
                u_du=float(rng.uniform(-2000.0, -100.0)),
                u_ac=float(rng.uniform(-6000.0, -500.0)),
                u_au=float(rng.uniform(100.0, 900.0)),
            )
            if candidate.u_ac * candidate.u_du - candidate.u_dc * candidate.u_au > 0:
                payoffs[type_id] = candidate
                break
        else:  # pragma: no cover - the condition holds for most draws
            raise RuntimeError("could not sample a Theorem-3 payoff matrix")
        costs[type_id] = float(rng.uniform(0.5, 3.0))
    if degenerate and n_types >= 2:
        source, target = 1, 2
        base = payoffs[source]
        jitter = 1e-9
        payoffs[target] = PayoffMatrix(
            u_dc=base.u_dc + float(rng.uniform(-jitter, jitter)),
            u_du=base.u_du + float(rng.uniform(-jitter, jitter)),
            u_ac=base.u_ac + float(rng.uniform(-jitter, jitter)),
            u_au=base.u_au + float(rng.uniform(-jitter, jitter)),
        )
        costs[target] = costs[source]
    return payoffs, costs


def zero_sum_game(
    rng: np.random.Generator, n_types: int | None = None
) -> tuple[dict[int, PayoffMatrix], dict[int, float]]:
    """A random zero-sum game honoring the paper's sign conventions.

    ``u_dc = -u_ac`` and ``u_du = -u_au`` — the regime where fictitious
    play provably converges. Zero-sum payoffs put the Theorem 3 quantity
    at exactly zero, so these games cannot come from :func:`random_game`
    (whose filter is strict); pure SSE solves never need Theorem 3, which
    is all Part D exercises.
    """
    if n_types is None:
        n_types = int(rng.integers(2, 7))
    payoffs: dict[int, PayoffMatrix] = {}
    costs: dict[int, float] = {}
    for type_id in range(1, n_types + 1):
        u_ac = float(rng.uniform(-6000.0, -500.0))
        u_au = float(rng.uniform(100.0, 900.0))
        payoffs[type_id] = PayoffMatrix(
            u_dc=-u_ac, u_du=-u_au, u_ac=u_ac, u_au=u_au
        )
        costs[type_id] = float(rng.uniform(0.5, 3.0))
    return payoffs, costs


def random_state(rng: np.random.Generator, type_ids: tuple[int, ...]) -> GameState:
    """A random game state spanning ample, scarce, and exhausted budgets."""
    regime = rng.integers(0, 3)
    if regime == 0:
        budget = float(rng.uniform(10.0, 120.0))
    elif regime == 1:
        budget = float(rng.uniform(0.05, 5.0))
    else:
        budget = 0.0
    lambdas = {
        t: float(rng.uniform(0.05, 250.0)) if rng.random() > 0.1 else 0.0
        for t in type_ids
    }
    return GameState(budget=budget, lambdas=lambdas)


def check_backends(
    report: ConformanceReport,
    n_games: int,
    n_states: int,
    rng: np.random.Generator,
    max_failures: int = 10,
) -> None:
    """Part A: pairwise backend agreement over random games and states."""
    pairs = {
        (a, b): PairResult(first=a, second=b) for a, b in combinations(BACKENDS, 2)
    }
    for game_index in range(n_games):
        payoffs, costs = random_game(rng, degenerate=game_index % 3 == 0)
        type_ids = tuple(sorted(payoffs))
        for _ in range(n_states):
            state = random_state(rng, type_ids)
            solutions = {
                backend: solve_online_sse(
                    state, payoffs, costs, backend=backend
                )
                for backend in BACKENDS
            }
            for (a, b), pair in pairs.items():
                sol_a, sol_b = solutions[a], solutions[b]
                pair.states += 1
                value_gap = abs(sol_a.auditor_utility - sol_b.auditor_utility)
                attacker_gap = abs(sol_a.attacker_utility - sol_b.attacker_utility)
                theta_gap = max(
                    abs(sol_a.thetas[t] - sol_b.thetas[t]) for t in type_ids
                )
                pair.max_value_gap = max(pair.max_value_gap, value_gap)
                pair.max_attacker_gap = max(pair.max_attacker_gap, attacker_gap)
                pair.max_theta_gap = max(pair.max_theta_gap, theta_gap)
                mismatch = sol_a.best_response != sol_b.best_response
                if mismatch:
                    pair.best_response_mismatches += 1
                if (
                    mismatch
                    or value_gap > VALUE_TOL
                    or attacker_gap > VALUE_TOL
                    or theta_gap > THETA_TOL
                ) and len(report.failures) < max_failures:
                    report.failures.append(
                        {
                            "kind": "backend",
                            "pair": f"{a}/{b}",
                            "budget": state.budget,
                            "lambdas": dict(state.lambdas),
                            "payoffs": {
                                t: dataclasses.asdict(p) for t, p in payoffs.items()
                            },
                            "costs": costs,
                            "value_gap": value_gap,
                            "attacker_gap": attacker_gap,
                            "theta_gap": theta_gap,
                            "best_responses": [
                                sol_a.best_response, sol_b.best_response,
                            ],
                        }
                    )
    report.pairs = list(pairs.values())


def check_fictitious_play(
    report: ConformanceReport,
    n_games: int,
    n_states: int,
    rng: np.random.Generator,
    n_dynamics: int = 8,
    max_failures: int = 10,
) -> None:
    """Part D: the fictitious-play backend and its raw dynamics.

    The backend half holds ``fictitious_play`` to Part A's exact
    tolerances against every LP backend on zero-sum instances — the
    propose-refine-complete design makes it exact regardless of how far
    the dynamics got. The dynamics half runs
    :func:`repro.learning.fictitious_play.run_fictitious_play` directly
    and gates the normalized exploitability gap.
    """
    from repro.learning.fictitious_play import run_fictitious_play

    pairs = {
        backend: PairResult(first=FP_BACKEND, second=backend)
        for backend in BACKENDS
    }
    for _ in range(n_games):
        payoffs, costs = zero_sum_game(rng)
        type_ids = tuple(sorted(payoffs))
        for _ in range(n_states):
            state = random_state(rng, type_ids)
            fp = solve_online_sse(state, payoffs, costs, backend=FP_BACKEND)
            for backend, pair in pairs.items():
                other = solve_online_sse(state, payoffs, costs, backend=backend)
                pair.states += 1
                value_gap = abs(fp.auditor_utility - other.auditor_utility)
                attacker_gap = abs(fp.attacker_utility - other.attacker_utility)
                theta_gap = max(
                    abs(fp.thetas[t] - other.thetas[t]) for t in type_ids
                )
                pair.max_value_gap = max(pair.max_value_gap, value_gap)
                pair.max_attacker_gap = max(pair.max_attacker_gap, attacker_gap)
                pair.max_theta_gap = max(pair.max_theta_gap, theta_gap)
                mismatch = fp.best_response != other.best_response
                if mismatch:
                    pair.best_response_mismatches += 1
                if (
                    mismatch
                    or value_gap > VALUE_TOL
                    or attacker_gap > VALUE_TOL
                    or theta_gap > THETA_TOL
                ) and len(report.failures) < max_failures:
                    report.failures.append(
                        {
                            "kind": "fictitious_play",
                            "pair": f"{FP_BACKEND}/{backend}",
                            "budget": state.budget,
                            "lambdas": dict(state.lambdas),
                            "payoffs": {
                                t: dataclasses.asdict(p)
                                for t, p in payoffs.items()
                            },
                            "costs": costs,
                            "value_gap": value_gap,
                            "attacker_gap": attacker_gap,
                            "theta_gap": theta_gap,
                            "best_responses": [
                                fp.best_response, other.best_response,
                            ],
                        }
                    )
    report.fp_pairs = list(pairs.values())

    dynamics = FPDynamicsResult()
    for _ in range(n_dynamics):
        payoffs, _costs = zero_sum_game(rng)
        budget = float(rng.uniform(1.0, 50.0))
        coefficient = {
            t: float(rng.uniform(0.005, 0.5)) for t in sorted(payoffs)
        }
        result = run_fictitious_play(
            budget,
            coefficient,
            payoffs,
            iterations=FP_DYNAMICS_ITERATIONS,
            tol=FP_GAP_TOL,
        )
        dynamics.instances += 1
        dynamics.converged += int(result.converged)
        dynamics.max_gap = max(dynamics.max_gap, result.gap)
        dynamics.max_iterations_used = max(
            dynamics.max_iterations_used, result.iterations
        )
        if not result.converged and len(report.failures) < max_failures:
            report.failures.append(
                {
                    "kind": "fp_dynamics",
                    "budget": budget,
                    "coefficient": coefficient,
                    "payoffs": {
                        t: dataclasses.asdict(p) for t, p in payoffs.items()
                    },
                    "gap": result.gap,
                    "iterations": result.iterations,
                }
            )
    report.fp_dynamics = [dynamics]


def _stream_workload(
    rng: np.random.Generator, n_types: int, n_alerts: int
) -> tuple[dict, dict, dict, np.ndarray, np.ndarray]:
    """A compact stream workload for the cache differential (self-contained
    so the engine layer does not depend on the experiments layer)."""
    payoffs, costs = random_game(rng, n_types=n_types)
    daily_mean = n_alerts / n_types * 0.8
    history = {
        t: [
            np.sort(rng.uniform(0.0, SECONDS_PER_DAY, rng.poisson(daily_mean)))
            for _ in range(6)
        ]
        for t in payoffs
    }
    times = np.sort(rng.uniform(0.0, SECONDS_PER_DAY, n_alerts))
    types = rng.choice(np.asarray(sorted(payoffs)), size=n_alerts)
    return payoffs, costs, history, types, times


def check_cache(
    report: ConformanceReport,
    n_alerts: int,
    rng: np.random.Generator,
    budget: float = 40.0,
) -> None:
    """Part B: cached vs uncached replays at every cache policy."""
    payoffs, costs, history, types, times = _stream_workload(
        rng, n_types=4, n_alerts=n_alerts
    )

    def replay(cache: SSESolutionCache | None) -> np.ndarray:
        config = SAGConfig(
            payoffs=payoffs,
            costs=costs,
            budget=budget,
            backend="analytic",
            budget_charging=CHARGE_EXPECTED,
        )
        game = SignalingAuditGame(
            config,
            RollbackEstimator(FutureAlertEstimator(history)),
            rng=np.random.default_rng(11),
            solution_cache=cache,
        )
        return np.array(
            [
                game.process_alert(int(t), float(s)).game_value
                for t, s in zip(types, times)
            ]
        )

    exact = replay(None)
    for budget_step, rate_step, error_budget in CACHE_POLICIES:
        cache = SSESolutionCache(
            budget_step=budget_step,
            rate_step=rate_step,
            error_budget=error_budget,
        )
        values = replay(cache)
        errors = np.abs(values - exact)
        result = CachePolicyResult(
            budget_step=budget_step,
            rate_step=rate_step,
            error_budget=error_budget,
            n_alerts=int(len(types)),
            hit_rate=cache.stats.hit_rate,
            refinements=cache.refinements,
            max_realized_error=float(np.max(errors)),
            mean_realized_error=float(np.mean(errors)),
        )
        report.cache.append(result)
        if not result.passed and len(report.failures) < 10:
            worst = int(np.argmax(errors))
            report.failures.append(
                {
                    "kind": "cache",
                    "budget_step": budget_step,
                    "rate_step": rate_step,
                    "error_budget": error_budget,
                    "alert_index": worst,
                    "realized_error": float(errors[worst]),
                }
            )


def check_table(
    report: ConformanceReport,
    n_alerts: int,
    rng: np.random.Generator,
    budget: float = 40.0,
) -> None:
    """Part C: compiled-table replays vs the analytic and cached paths.

    One stream, four engine configurations. The ``table`` configuration
    compiles over the full reachable region (all hits on this workload);
    the ``table-floored`` one compiles a grid whose budget axis stops at
    70% of the opening budget, so once the replay spends past the floor
    every remaining alert is out-of-region and must take the fallback
    path — which the gate requires to agree with the cache path exactly
    as tightly as the in-region cells do.
    """
    from repro.engine.stream import BatchAuditEngine, analytic_config

    payoffs, costs, history, types, times = _stream_workload(
        rng, n_types=4, n_alerts=n_alerts
    )

    def replay(
        cache: SSESolutionCache | None,
        policy_table: bool = False,
        policy_table_options: dict | None = None,
    ):
        engine = BatchAuditEngine(
            analytic_config(
                SAGConfig(
                    payoffs=payoffs,
                    costs=costs,
                    budget=budget,
                    budget_charging=CHARGE_EXPECTED,
                )
            ),
            RollbackEstimator(FutureAlertEstimator(history)),
            rng=np.random.default_rng(11),
            cache=cache,
            policy_table=policy_table,
            policy_table_options=policy_table_options,
        )
        return engine.process_stream(types, times)

    analytic_result = replay(None)
    cached_result = replay(
        SSESolutionCache(error_budget=DEFAULT_ERROR_BUDGET)
    )
    configurations = (
        ("table", None, False),
        ("table-floored", {"budget_floor": budget * 0.7}, True),
    )
    for label, options, expect_fallbacks in configurations:
        table_result = replay(
            SSESolutionCache(error_budget=DEFAULT_ERROR_BUDGET),
            policy_table=True,
            policy_table_options=options,
        )
        result = TableConfigResult(
            label=label,
            error_budget=DEFAULT_ERROR_BUDGET,
            n_alerts=int(len(types)),
            table_hits=table_result.stats.table_hits,
            fallbacks=table_result.stats.fallbacks,
            expect_fallbacks=expect_fallbacks,
            max_value_gap_vs_analytic=float(
                np.max(np.abs(table_result.game_values - analytic_result.game_values))
            ),
            max_theta_gap_vs_analytic=float(
                np.max(np.abs(table_result.thetas - analytic_result.thetas))
            ),
            max_value_gap_vs_cached=float(
                np.max(np.abs(table_result.game_values - cached_result.game_values))
            ),
            max_theta_gap_vs_cached=float(
                np.max(np.abs(table_result.thetas - cached_result.thetas))
            ),
        )
        report.table.append(result)
        if not result.passed and len(report.failures) < 10:
            report.failures.append(
                {
                    "kind": "table",
                    "label": label,
                    "table_hits": result.table_hits,
                    "fallbacks": result.fallbacks,
                    "max_value_gap_vs_analytic": result.max_value_gap_vs_analytic,
                    "max_theta_gap_vs_analytic": result.max_theta_gap_vs_analytic,
                    "max_value_gap_vs_cached": result.max_value_gap_vs_cached,
                    "max_theta_gap_vs_cached": result.max_theta_gap_vs_cached,
                }
            )


def run_conformance(
    seed: int = 7,
    quick: bool = False,
    n_games: int | None = None,
    n_states: int | None = None,
    n_alerts: int | None = None,
) -> ConformanceReport:
    """One full conformance run; sizes default by mode."""
    if n_games is None:
        n_games = 8 if quick else 24
    if n_states is None:
        n_states = 3 if quick else 5
    if n_alerts is None:
        n_alerts = 250 if quick else 600
    report = ConformanceReport(
        seed=seed, quick=quick, n_games=n_games, n_states=n_states
    )
    rng = np.random.default_rng(seed)
    check_backends(report, n_games, n_states, rng)
    check_cache(report, n_alerts, rng)
    check_table(report, n_alerts, rng)
    check_fictitious_play(
        report,
        n_games=max(1, n_games // 2),
        n_states=n_states,
        rng=rng,
        n_dynamics=4 if quick else 10,
    )
    return report


def format_report(report: ConformanceReport) -> str:
    """Human-readable summary of a conformance run."""
    lines = [
        f"Conformance — {report.n_games} games x {report.n_states} states, "
        f"seed {report.seed}{' (quick)' if report.quick else ''}",
        "  backend pairs (tol: value "
        f"{VALUE_TOL:g}, theta {THETA_TOL:g}):",
    ]
    for pair in report.pairs:
        status = "ok " if pair.passed else "FAIL"
        lines.append(
            f"    [{status}] {pair.first:8s}/{pair.second:8s} "
            f"value {pair.max_value_gap:.2e}  "
            f"attacker {pair.max_attacker_gap:.2e}  "
            f"theta {pair.max_theta_gap:.2e}  "
            f"BR mismatches {pair.best_response_mismatches}"
        )
    lines.append("  cache policies (realized |game value| error vs uncached):")
    for policy in report.cache:
        status = "ok " if policy.passed else "FAIL"
        if not policy.gated:
            status = "fyi"
        budget_label = (
            "legacy" if policy.error_budget is None else f"{policy.error_budget:g}"
        )
        lines.append(
            f"    [{status}] steps ({policy.budget_step:g}, "
            f"{policy.rate_step:g}) error_budget {budget_label:>7s}: "
            f"max {policy.max_realized_error:.2e} "
            f"(hit rate {policy.hit_rate:.0%}, "
            f"{policy.refinements} refinements)"
        )
    lines.append("  policy table (value gap vs analytic/cached, theta gap):")
    for config in report.table:
        status = "ok " if config.passed else "FAIL"
        lines.append(
            f"    [{status}] {config.label:14s} "
            f"value {config.max_value_gap_vs_analytic:.2e}/"
            f"{config.max_value_gap_vs_cached:.2e}  "
            f"theta {max(config.max_theta_gap_vs_analytic, config.max_theta_gap_vs_cached):.2e}  "
            f"hits {config.table_hits}, fallbacks {config.fallbacks}"
        )
    lines.append(
        "  fictitious play vs LP backends (zero-sum; Part A tolerances):"
    )
    for pair in report.fp_pairs:
        status = "ok " if pair.passed else "FAIL"
        lines.append(
            f"    [{status}] {pair.first}/{pair.second:8s} "
            f"value {pair.max_value_gap:.2e}  "
            f"attacker {pair.max_attacker_gap:.2e}  "
            f"theta {pair.max_theta_gap:.2e}  "
            f"BR mismatches {pair.best_response_mismatches}"
        )
    for dyn in report.fp_dynamics:
        status = "ok " if dyn.passed else "FAIL"
        lines.append(
            f"    [{status}] dynamics: {dyn.converged}/{dyn.instances} "
            f"instances reached gap {dyn.gap_tol:g} "
            f"(worst gap {dyn.max_gap:.2e}, "
            f"max {dyn.max_iterations_used} iterations)"
        )
    lines.append(f"  overall: {'PASS' if report.passed else 'FAIL'}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Differential conformance: solver backends + solution cache"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced game/state/stream counts for CI smoke runs",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the machine-readable JSON report here",
    )
    args = parser.parse_args(argv)

    report = run_conformance(seed=args.seed, quick=args.quick)
    print(format_report(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    if not report.passed:
        print(
            "FAIL: backend, cache, or policy-table conformance violated",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
