"""Precompiled certified policy tables: the zero-solve steady-state path.

Within one audit cycle the game state that reaches the SSE solver is
``(remaining budget, future-alert rates)`` — and the rate vector is not
free: it is a deterministic step function of the (rollback-effective) query
time, changing only at historical arrival times
(:meth:`~repro.stats.estimator.FutureAlertEstimator.rate_trajectory`). The
reachable region is therefore a *one-dimensional family of rate columns*
crossed with a budget interval, which is small enough to solve exhaustively
ahead of time:

* **Columns.** One column per trajectory row, carrying the row's exact rate
  vector. The certificate's rate sensitivities
  (``L_B * V_t * |r'(lambda_t)| / r^2``, from
  :func:`~repro.stats.poisson.expected_reciprocal_slope`) price a certified
  rate step at ``error_budget / (2 * L_rate)`` — nanoscale for any useful
  error budget — so the Lipschitz bound effectively forces *exact* column
  placement. The discrete trajectory makes that affordable: no interior
  rate quantization exists to certify away.
* **Budget grid.** The Lipschitz-certified step ``error_budget / (2 * L_B)``
  (slope ``max_t coef_t * span_t``, the certificate's ``lipschitz_budget``)
  is likewise far below any practical width, so the compiler clamps the
  step to ``span / max_budget_cells`` and instead certifies each realized
  cell *exactly*: every candidate's optimal value is nondecreasing in the
  budget, so the winner at a cell's low edge stays the winner across the
  whole cell whenever its value there dominates every rival's value at the
  *high* edge by a guard above the solver's tie window. Certified cells
  introduce **zero** value error — the table stores the winner's identity,
  and serving re-evaluates that winner's closed-form water-filling at the
  *queried* budget, which is the exact optimum (the same mathematics
  :func:`~repro.engine.analytic.solve_multiple_lp_analytic` would return).
  Uncertified cells (winner handoffs, tie regions) are marked invalid and
  fall back to the engine's cache path.

The whole grid is solved in one stacked pass
(:func:`~repro.engine.analytic.solve_grid_analytic`); the compiled artifact
keeps the dense per-grid-point ``(p1, q1, p0, q0)`` and value arrays plus
the per-column water-filling geometry needed for exact serving.
:meth:`CompiledPolicy.lookup` answers a state in microseconds via index
arithmetic; out-of-region states (budget outside the compiled span, rate
vectors off the compiled trajectory) return ``None`` and are counted, so
the engine can fall back and recompile on cycle close.
"""

from __future__ import annotations

import time as _time
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError
from repro.core.game import SAGConfig
from repro.core.sse import _TIE_TOL, SSESolution
from repro.engine.analytic import solve_grid_analytic
from repro.engine.cache import DEFAULT_ERROR_BUDGET
from repro.stats.estimator import RollbackEstimator
from repro.stats.poisson import PoissonReciprocalMoment

#: Winner-stability guard: certified cells keep the winner's lead above the
#: solver's canonical tie window by an order of magnitude, so tie-set
#: membership can never disagree with a direct solve inside a valid cell.
STABILITY_GUARD = 10.0 * _TIE_TOL

#: Column chunk size for the stacked grid solve (bounds peak memory at
#: roughly ``chunk * n_types * n_grid_points`` floats).
_CHUNK_COLUMNS = 512

_new = object.__new__
_setattr = object.__setattr__


@dataclass(frozen=True)
class TableRegion:
    """The reachable-region estimate a table was compiled for."""

    budget_floor: float
    budget_ceiling: float
    budget_cells: int
    budget_step: float
    columns: int
    total_columns: int
    truncated: bool
    lipschitz_budget: float
    lipschitz_budget_step: float
    lipschitz_rate_step: float


class CompiledPolicy:
    """A dense certified policy table for one game configuration.

    Built by :class:`PolicyTableCompiler`; answers
    :meth:`lookup`/:meth:`solution_at` with *exact* SSE solutions for every
    certified in-region state, ``None`` otherwise. Instances also keep the
    dense per-grid-point decision arrays (:attr:`values`, :attr:`p1`,
    :attr:`q1`, :attr:`p0`, :attr:`q0`) for diagnostics and tests.
    """

    def __init__(
        self,
        *,
        type_ids: tuple[int, ...],
        region: TableRegion,
        boundaries: np.ndarray,
        rates: np.ndarray,
        totals: np.ndarray,
        budgets: np.ndarray,
        payoff_rows: dict[str, tuple[float, ...]],
        costs: tuple[float, ...],
        feasible_cap: tuple[bool, ...],
        inv_coef: list[tuple[float, ...]],
        a: tuple[tuple[float, ...], ...],
        b: tuple[tuple[float, ...], ...],
        xs: tuple[tuple[float, ...], ...],
        g: list[tuple[tuple[float, ...], ...]],
        valid: list[bytes],
        winner: list[bytes],
        values: np.ndarray,
        p1: np.ndarray,
        q1: np.ndarray,
        p0: np.ndarray,
        q0: np.ndarray,
        signaling_enabled: bool,
        compile_seconds: float,
    ) -> None:
        self.type_ids = type_ids
        self.region = region
        self.boundaries = boundaries
        self.rates = rates
        self.totals = totals
        self.budgets = budgets
        self.u_dc = payoff_rows["u_dc"]
        self.u_du = payoff_rows["u_du"]
        self.u_ac = payoff_rows["u_ac"]
        self.u_au = payoff_rows["u_au"]
        self.gap = payoff_rows["gap"]
        self.span = payoff_rows["span"]
        self.costs = costs
        self.feasible_cap = feasible_cap
        self.inv_coef = inv_coef
        self.a = a
        self.b = b
        self.xs = xs
        self.g = g
        self.valid = valid
        self.winner = winner
        self.values = values
        self.p1 = p1
        self.q1 = q1
        self.p0 = p0
        self.q0 = q0
        self.signaling_enabled = signaling_enabled
        self.compile_seconds = compile_seconds
        self.index_of = {t: i for i, t in enumerate(type_ids)}
        self._neg_totals = -totals
        self.lookup_hits = 0
        self.lookup_misses = 0

    # -- region arithmetic -------------------------------------------------

    @property
    def n_columns(self) -> int:
        """Number of compiled rate columns (trajectory prefix length)."""
        return self.region.columns

    @property
    def n_cells(self) -> int:
        """Number of budget cells per column."""
        return self.region.budget_cells

    @property
    def certified_fraction(self) -> float:
        """Fraction of compiled cells whose winner is certified stable."""
        total = self.n_columns * self.n_cells
        if total == 0:
            return 0.0
        ok = sum(sum(row) for row in self.valid)
        return ok / total

    def column_for_time(self, effective_time: float) -> int:
        """Trajectory row index for one (rollback-effective) query time."""
        return int(
            np.searchsorted(self.boundaries, effective_time, side="right")
        )

    def column_for(self, lambdas: Mapping[int, float]) -> int | None:
        """Compiled column whose rate vector equals ``lambdas`` exactly.

        The trajectory's total remaining mean is strictly decreasing, so a
        binary search on the totals pins the only possible row; the
        per-type comparison then accepts or rejects it bit-exactly.
        Returns ``None`` for off-trajectory states (the caller falls back).
        """
        if len(lambdas) != len(self.type_ids):
            return None
        total = 0.0
        vector = []
        for t in self.type_ids:
            lam = lambdas.get(t)
            if lam is None:
                return None
            vector.append(lam)
            total += lam
        j = int(np.searchsorted(self._neg_totals, -total, side="left"))
        for row in (j, j + 1):
            if 0 <= row < self.region.columns:
                rates = self.rates[row]
                if all(rates[i] == vector[i] for i in range(len(vector))):
                    return row
        return None

    def cell_for(self, budget: float) -> int | None:
        """Budget-grid cell index, or ``None`` when outside the span."""
        region = self.region
        if not region.budget_floor <= budget <= region.budget_ceiling:
            return None
        cell = int((budget - region.budget_floor) / region.budget_step)
        if cell >= region.budget_cells:
            cell = region.budget_cells - 1
        return cell

    # -- serving -----------------------------------------------------------

    def solution_at(self, column: int, budget: float) -> SSESolution | None:
        """Exact SSE at a compiled column, or ``None`` when out of region.

        Certified cells serve the stored winner directly; uncertified cells
        (winner handoffs) run the :meth:`scan` over all candidates — still
        zero-solve, still exact.
        """
        cell = self.cell_for(budget)
        if cell is None or not 0 <= column < self.region.columns:
            return None
        if self.valid[column][cell]:
            return self._serve(column, self.winner[column][cell], budget)
        found = self.scan(column, budget)
        if found is None:
            return None
        winner, x = found
        return self._finish(column, winner, x)

    def scan(self, column: int, budget: float) -> tuple[int, float] | None:
        """Exact winner + coverage by scanning every candidate.

        Used on uncertified cells, where the stored single winner cannot be
        trusted across the whole budget cell. Evaluates each feasible
        candidate's water-filling at the queried budget and applies the
        solver's canonical two-phase tie-break (value within ``_TIE_TOL``,
        then least attacker utility, then smallest type id) — the same
        selection :func:`~repro.core.sse.select_candidate` makes. Returns
        ``None`` when no candidate is feasible at this state.
        """
        gcol = self.g[column]
        in_budget = budget + 1e-9
        u_du = self.u_du
        u_au = self.u_au
        gap = self.gap
        span = self.span
        xs = self.xs
        candidates: list[int] = []
        values: list[float] = []
        attackers: list[float] = []
        coverages: list[float] = []
        for c in range(len(self.type_ids)):
            if not self.feasible_cap[c]:
                continue
            gs = gcol[c]
            if gs[0] > in_budget:
                continue
            xc = xs[c]
            m = len(gs)
            k = 0
            while k + 1 < m and gs[k + 1] <= in_budget:
                k += 1
            if k == m - 1:
                x = xc[k]
            else:
                g_lo = gs[k]
                dg = gs[k + 1] - g_lo
                x_lo = xc[k]
                if dg <= 0.0:
                    x = x_lo
                else:
                    x_hi = xc[k + 1]
                    x = x_lo + (budget - g_lo) * (x_hi - x_lo) / dg
                    if x < x_lo:
                        x = x_lo
                    elif x > x_hi:
                        x = x_hi
            candidates.append(c)
            values.append(u_du[c] + x * span[c])
            attackers.append(u_au[c] + x * gap[c])
            coverages.append(x)
        if not candidates:
            return None
        best = max(values)
        cut = best - _TIE_TOL
        least = min(a for a, v in zip(attackers, values) if v >= cut)
        att_cut = least + _TIE_TOL
        for i, c in enumerate(candidates):
            if values[i] >= cut and attackers[i] <= att_cut:
                return c, coverages[i]
        return None  # pragma: no cover - the selection above always lands

    def lookup(
        self, budget: float, lambdas: Mapping[int, float]
    ) -> SSESolution | None:
        """Exact SSE for one state via pure index arithmetic.

        ``None`` means the state is out of the compiled region (budget off
        the grid, rates off the trajectory, no feasible candidate); the
        caller should fall back to the solve/cache path. Hits and misses
        are counted on the instance.
        """
        column = self.column_for(lambdas)
        if column is not None:
            solution = self.solution_at(column, budget)
            if solution is not None:
                self.lookup_hits += 1
                return solution
        self.lookup_misses += 1
        return None

    def water_fill(self, column: int, winner: int, budget: float) -> float:
        """The winner's exact optimal coverage at ``budget``.

        Inverts the column's piecewise-linear budget requirement ``g`` on
        the crossing segment — identical arithmetic to the stacked grid
        solve, evaluated at the *queried* budget.
        """
        gs = self.g[column][winner]
        xw = self.xs[winner]
        m = len(gs)
        k = 0
        tol = budget + 1e-9
        while k + 1 < m and gs[k + 1] <= tol:
            k += 1
        if k == m - 1:
            return xw[k]
        g_lo = gs[k]
        g_hi = gs[k + 1]
        dg = g_hi - g_lo
        x_lo = xw[k]
        if dg <= 0.0:
            return x_lo
        x_hi = xw[k + 1]
        x = x_lo + (budget - g_lo) * (x_hi - x_lo) / dg
        if x < x_lo:
            return x_lo
        if x > x_hi:
            return x_hi
        return x

    def _serve(self, column: int, winner: int, budget: float) -> SSESolution:
        return self._finish(column, winner, self.water_fill(column, winner, budget))

    def _finish(self, column: int, winner: int, x: float) -> SSESolution:
        aw = self.a[winner]
        bw = self.b[winner]
        inv = self.inv_coef[column]
        thetas: dict[int, float] = {}
        allocations: dict[int, float] = {}
        for i, t in enumerate(self.type_ids):
            if i == winner:
                theta = x
            else:
                theta = aw[i] + bw[i] * x
                if theta < 0.0:
                    theta = 0.0
                elif theta > 1.0:
                    theta = 1.0
            thetas[t] = theta
            allocations[t] = theta * inv[i]
        solution = _new(SSESolution)
        _setattr(
            solution,
            "__dict__",
            {
                "thetas": thetas,
                "allocations": allocations,
                "best_response": self.type_ids[winner],
                "auditor_utility": self.u_du[winner] + x * self.span[winner],
                "attacker_utility": self.u_au[winner] + x * self.gap[winner],
                "lps_solved": 0,
                "lps_feasible": 0,
                "certificate": None,
            },
        )
        return solution


class PolicyTableCompiler:
    """Compiles a :class:`CompiledPolicy` for one game + estimator pair.

    Parameters
    ----------
    config:
        Game configuration. Table mode covers the classic closed-form
        signaling pipeline: ``robust_margin`` must be 0, and with signaling
        enabled the method must be ``"closed_form"`` with every payoff
        satisfying the Theorem 3 condition.
    estimator:
        The cycle's rollback estimator; its base history defines the rate
        trajectory (and its threshold the rollback row totals).
    error_budget:
        Certified game-value error budget (defaults to the cache's
        ``DEFAULT_ERROR_BUDGET``). Valid cells serve exact solutions, so
        the realized error is 0; the budget sizes the Lipschitz step
        diagnostics and the stability guard.
    max_budget_cells:
        Practical clamp on the budget grid resolution.
    max_columns:
        Clamp on compiled trajectory columns; alerts whose effective time
        lands beyond the compiled prefix miss the table (the engine
        recompiles with full coverage on cycle close).
    budget_floor:
        Lower edge of the compiled budget span. States below it miss the
        table (budget exhaustion below the grid floor).
    moment:
        Optional shared reciprocal-moment memo.
    """

    def __init__(
        self,
        config: SAGConfig,
        estimator: RollbackEstimator,
        *,
        error_budget: float | None = None,
        max_budget_cells: int = 256,
        max_columns: int = 16384,
        budget_floor: float = 0.0,
        moment: PoissonReciprocalMoment | None = None,
    ) -> None:
        if config.robust_margin > 0:
            raise ExperimentError(
                "policy tables cover the classic OSSP only; robust_margin "
                "must be 0"
            )
        if config.signaling_enabled:
            if config.signaling_method != "closed_form":
                raise ExperimentError(
                    "policy tables require signaling_method='closed_form'"
                )
            bad = [
                t
                for t in sorted(config.payoffs)
                if not config.payoffs[t].satisfies_theorem3_condition()
            ]
            if bad:
                raise ExperimentError(
                    "policy tables require the Theorem 3 payoff condition "
                    f"for every type; violated by {bad}"
                )
        if not 0.0 <= budget_floor < config.budget:
            raise ExperimentError(
                f"budget_floor must lie in [0, {config.budget}), "
                f"got {budget_floor}"
            )
        if max_budget_cells < 1 or max_columns < 1:
            raise ExperimentError(
                "max_budget_cells and max_columns must be positive"
            )
        self._config = config
        self._estimator = estimator
        self._error_budget = (
            DEFAULT_ERROR_BUDGET if error_budget is None else float(error_budget)
        )
        if self._error_budget <= 0:
            raise ExperimentError(
                f"error_budget must be positive, got {self._error_budget}"
            )
        self._max_budget_cells = int(max_budget_cells)
        self._max_columns = int(max_columns)
        self._budget_floor = float(budget_floor)
        self._moment = moment if moment is not None else PoissonReciprocalMoment()

    @property
    def error_budget(self) -> float:
        """The certified game-value error budget."""
        return self._error_budget

    def compile(self) -> CompiledPolicy:
        """Solve the reachable region and pack the table."""
        started = _time.perf_counter()
        config = self._config
        base = self._estimator.base
        type_ids = base.type_ids
        n = len(type_ids)
        costs = tuple(float(config.costs[t]) for t in type_ids)

        boundaries, rates = base.rate_trajectory()
        total_columns = rates.shape[0]
        n_columns = min(total_columns, self._max_columns)
        # Row totals in the estimator's summation order, for the rollback
        # rich/poor split (bitwise identical to total_remaining_mean).
        totals = np.zeros(total_columns)
        for i in range(n):
            totals += rates[:, i]

        moment = self._moment
        coef = np.empty((n_columns, n))
        slope_bound = 0.0
        for i, t in enumerate(type_ids):
            cost = costs[i]
            for j in range(n_columns):
                coef[j, i] = moment(rates[j, i]) / cost
        span = np.array(
            [config.payoffs[t].u_dc - config.payoffs[t].u_du for t in type_ids]
        )
        lipschitz_budget = float((coef * span[None, :]).max()) if n_columns else 0.0
        for i, t in enumerate(type_ids):
            cost = costs[i]
            for j in range(n_columns):
                r = moment(rates[j, i])
                slope_bound = max(
                    slope_bound,
                    lipschitz_budget
                    * cost
                    * abs(moment.slope(rates[j, i]))
                    / (r * r),
                )

        # Grid-step selection from the Lipschitz bounds: the certified-exact
        # steps are error_budget / (2 L); both are clamped to what is
        # practical (the budget grid to max_budget_cells; the rate axis to
        # the exact trajectory rows, since no coarser step certifies).
        floor = self._budget_floor
        ceiling = float(config.budget)
        budget_span = ceiling - floor
        lip_budget_step = (
            self._error_budget / (2.0 * lipschitz_budget)
            if lipschitz_budget > 0
            else budget_span
        )
        lip_rate_step = (
            self._error_budget / (2.0 * slope_bound)
            if slope_bound > 0
            else float("inf")
        )
        if budget_span > 0:
            width = max(lip_budget_step, budget_span / self._max_budget_cells)
            n_cells = min(
                self._max_budget_cells, max(1, int(np.ceil(budget_span / width)))
            )
        else:
            n_cells = 1
        budgets = np.linspace(floor, ceiling, n_cells + 1)
        step = budgets[1] - budgets[0] if n_cells >= 1 and budget_span > 0 else 1.0

        guard = max(STABILITY_GUARD, self._error_budget)
        signaling = bool(config.signaling_enabled)
        u_au_row = np.array([config.payoffs[t].u_au for t in type_ids])
        u_du_row = np.array([config.payoffs[t].u_du for t in type_ids])

        feasible_cap: tuple[bool, ...] = ()
        inv_list: list[tuple[float, ...]] = []
        g_list: list[tuple[tuple[float, ...], ...]] = []
        valid_list: list[bytes] = []
        winner_list: list[bytes] = []
        values_grid = np.empty((n_columns, n_cells + 1), dtype=np.float32)
        p1_grid = np.empty_like(values_grid)
        q1_grid = np.empty_like(values_grid)
        p0_grid = np.empty_like(values_grid)
        q0_grid = np.empty_like(values_grid)
        a_rows: tuple[tuple[float, ...], ...] = ()
        b_rows: tuple[tuple[float, ...], ...] = ()
        xs_rows: tuple[tuple[float, ...], ...] = ()

        for start in range(0, n_columns, _CHUNK_COLUMNS):
            stop = min(start + _CHUNK_COLUMNS, n_columns)
            grid = solve_grid_analytic(
                budgets, coef[start:stop], config.payoffs, type_ids
            )
            if start == 0:
                a_rows = tuple(tuple(row) for row in grid.a.tolist())
                b_rows = tuple(tuple(row) for row in grid.b.tolist())
                xs_rows = tuple(tuple(row) for row in grid.xs.tolist())
                off = ~np.eye(n, dtype=bool)
                cross = np.where(off, (1.0 - grid.a) / grid.b, np.inf)
                cap_raw = np.minimum(1.0, cross.min(axis=1, initial=np.inf))
                feasible_cap = tuple(bool(v) for v in cap_raw >= -1e-9)

            winners = grid.winners  # (Kc, N)
            values = grid.values  # (Kc, n, N)
            # Cell certification: each candidate's value is nondecreasing in
            # the budget, so the left-edge winner stays optimal across the
            # cell iff its left-edge value dominates every rival's
            # right-edge value by the guard.
            w_cells = winners[:, :-1].astype(np.intp)  # (Kc, C)
            v_w_lo = np.take_along_axis(
                values[:, :, :-1], w_cells[:, None, :], axis=1
            )[:, 0, :]
            rivals = values[:, :, 1:].copy()
            np.put_along_axis(rivals, w_cells[:, None, :], -np.inf, axis=1)
            rival_hi = rivals.max(axis=1)
            valid = (v_w_lo - rival_hi >= guard) | np.isneginf(rival_hi)

            # Dense per-grid-point decision arrays at the winner.
            w_pts = winners.astype(np.intp)
            x_w = np.take_along_axis(grid.x_star, w_pts[:, None, :], axis=1)[:, 0, :]
            v_w = np.take_along_axis(values, w_pts[:, None, :], axis=1)[:, 0, :]
            att_w = np.take_along_axis(
                grid.attacker, w_pts[:, None, :], axis=1
            )[:, 0, :]
            u_au_w = u_au_row[w_pts]
            u_du_w = u_du_row[w_pts]
            if signaling:
                deterred = att_w <= 0.0
                q0 = np.where(deterred, 0.0, att_w / u_au_w)
                q1 = np.where(deterred, 1.0 - x_w, np.clip(1.0 - x_w - q0, 0.0, None))
                p1 = x_w
                p0 = np.zeros_like(x_w)
                value = (u_du_w / u_au_w) * np.clip(att_w, 0.0, None)
            else:
                # Online-SSE baseline: audit at the marginal, no warnings.
                p1 = np.zeros_like(x_w)
                q1 = np.zeros_like(x_w)
                p0 = x_w
                q0 = 1.0 - x_w
                value = np.where(att_w < 0.0, 0.0, v_w)
            sl = slice(start, stop)
            values_grid[sl] = value
            p1_grid[sl] = p1
            q1_grid[sl] = q1
            p0_grid[sl] = p0
            q0_grid[sl] = q0

            inv = 1.0 / coef[start:stop]
            inv_list.extend(tuple(row) for row in inv.tolist())
            g_list.extend(
                tuple(tuple(row) for row in cols) for cols in grid.g.tolist()
            )
            valid_list.extend(bytes(row) for row in valid.astype(np.uint8))
            winner_list.extend(bytes(row) for row in winners[:, :-1].astype(np.uint8))

        payoff_rows = {
            "u_dc": tuple(float(config.payoffs[t].u_dc) for t in type_ids),
            "u_du": tuple(float(config.payoffs[t].u_du) for t in type_ids),
            "u_ac": tuple(float(config.payoffs[t].u_ac) for t in type_ids),
            "u_au": tuple(float(config.payoffs[t].u_au) for t in type_ids),
            "gap": tuple(
                float(config.payoffs[t].u_ac - config.payoffs[t].u_au)
                for t in type_ids
            ),
            "span": tuple(
                float(config.payoffs[t].u_dc - config.payoffs[t].u_du)
                for t in type_ids
            ),
        }
        region = TableRegion(
            budget_floor=floor,
            budget_ceiling=ceiling,
            budget_cells=n_cells,
            budget_step=float(step),
            columns=n_columns,
            total_columns=total_columns,
            truncated=n_columns < total_columns,
            lipschitz_budget=lipschitz_budget,
            lipschitz_budget_step=float(lip_budget_step),
            lipschitz_rate_step=float(lip_rate_step),
        )
        return CompiledPolicy(
            type_ids=type_ids,
            region=region,
            boundaries=boundaries,
            rates=rates,
            totals=totals,
            budgets=budgets,
            payoff_rows=payoff_rows,
            costs=costs,
            feasible_cap=feasible_cap,
            inv_coef=inv_list,
            a=a_rows,
            b=b_rows,
            xs=xs_rows,
            g=g_list,
            valid=valid_list,
            winner=winner_list,
            values=values_grid,
            p1=p1_grid,
            q1=q1_grid,
            p0=p0_grid,
            q0=q0_grid,
            signaling_enabled=signaling,
            compile_seconds=_time.perf_counter() - started,
        )
