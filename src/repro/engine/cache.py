"""State-keyed cache of online-SSE solutions.

An audit cycle revisits near-identical game states thousands of times: the
remaining budget drifts by tiny per-alert charges and the Poisson rate
estimates move slowly between alerts. This module turns repeated
``solve_online_sse`` calls at such states into dictionary lookups.

Keys are built from ``(budget, lambdas)`` with configurable quantization:

* ``budget_step == 0`` / ``rate_step == 0`` (the default) keys on the exact
  float values — a hit requires a byte-identical state, so cached results
  are indistinguishable from uncached solving (used by replayed cycles,
  repeated Monte Carlo trials, and the correctness tests);
* positive steps snap budgets / rates to grid buckets, trading a bounded
  approximation error (the solution of a state up to half a step away) for
  hits *within* a single cycle. The error is controlled: the SSE marginals
  are Lipschitz in the budget (slope ``<= max_t coef_t``) and in each rate
  (through the smooth reciprocal moment), so a step of ``s`` perturbs
  thetas by ``O(s)``.

Keys cover the *state* only — the game configuration (payoffs, costs,
backend) is assumed fixed for the cache's lifetime. Consumers that inject a
cache into a game declare that configuration via :meth:`SSESolutionCache.bind`,
which raises if the same cache is later attached to a differing
configuration (sharing across configurations would silently return the
wrong equilibria).

Counters reconcile by construction: ``hits + misses == calls``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ModelError

if TYPE_CHECKING:  # imported for type checking only; no runtime dependency
    from repro.core.sse import GameState, SSESolution

#: A cache key: the quantized budget plus the quantized per-type rates.
CacheKey = tuple[float, tuple[tuple[int, float], ...]]


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of a cache's counters."""

    hits: int
    misses: int
    entries: int

    @property
    def calls(self) -> int:
        """Total lookups served (``hits + misses``)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when unused)."""
        return self.hits / self.calls if self.calls else 0.0

    @classmethod
    def merge(cls, snapshots: "list[CacheStats] | tuple[CacheStats, ...]") -> "CacheStats":
        """Combine snapshots of *disjoint* caches (e.g. one per worker).

        Counters add; ``entries`` adds too because each worker owns its own
        cache (the suite's sharded runner never shares cache objects across
        processes). The merged snapshot still reconciles:
        ``hits + misses == calls``.
        """
        return cls(
            hits=sum(s.hits for s in snapshots),
            misses=sum(s.misses for s in snapshots),
            entries=sum(s.entries for s in snapshots),
        )


class SSESolutionCache:
    """Quantizing ``GameState -> SSESolution`` memo with LRU-ish eviction.

    Parameters
    ----------
    budget_step:
        Quantization step for the remaining budget; 0 keys on the exact
        value.
    rate_step:
        Quantization step for each per-type Poisson rate; 0 keys exactly.
    max_entries:
        Optional size bound; the oldest entry is evicted once exceeded
        (insertion order — within a cycle, states drift monotonically, so
        old entries are the least likely to recur).
    """

    def __init__(
        self,
        budget_step: float = 0.0,
        rate_step: float = 0.0,
        max_entries: int | None = None,
    ) -> None:
        if budget_step < 0 or rate_step < 0:
            raise ModelError("quantization steps must be non-negative")
        if max_entries is not None and max_entries <= 0:
            raise ModelError(f"max_entries must be positive, got {max_entries}")
        self._budget_step = float(budget_step)
        self._rate_step = float(rate_step)
        self._max_entries = max_entries
        self._data: dict[CacheKey, "SSESolution"] = {}
        self._hits = 0
        self._misses = 0
        self._fingerprint: object | None = None

    @property
    def budget_step(self) -> float:
        """Budget quantization step (0 = exact)."""
        return self._budget_step

    @property
    def rate_step(self) -> float:
        """Rate quantization step (0 = exact)."""
        return self._rate_step

    @property
    def hits(self) -> int:
        """Lookups answered from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that required a fresh solve."""
        return self._misses

    @property
    def stats(self) -> CacheStats:
        """Current counters as an immutable snapshot."""
        return CacheStats(hits=self._hits, misses=self._misses, entries=len(self._data))

    def __len__(self) -> int:
        return len(self._data)

    def bind(self, fingerprint: object) -> None:
        """Tie this cache to one solve configuration.

        The first call records ``fingerprint`` (any equality-comparable
        description of what determines a solution besides the state —
        payoffs, costs, backend). Later calls with an *equal* fingerprint
        are no-ops; a differing one raises, because cached entries keyed
        only on ``(budget, lambdas)`` would be wrong answers under the new
        configuration. :meth:`clear` resets the binding along with the
        entries.
        """
        if self._fingerprint is None:
            self._fingerprint = fingerprint
        elif self._fingerprint != fingerprint:
            raise ModelError(
                "SSESolutionCache is bound to a different solve "
                "configuration; use a fresh cache (or clear() this one) "
                "when payoffs, costs, or the backend change"
            )

    def key_for(self, state: "GameState") -> CacheKey:
        """The quantized key under which ``state`` is cached."""
        return (
            _quantize(state.budget, self._budget_step),
            tuple(
                (type_id, _quantize(lam, self._rate_step))
                for type_id, lam in sorted(state.lambdas.items())
            ),
        )

    def get_or_solve(
        self,
        state: "GameState",
        solve: Callable[["GameState"], "SSESolution"],
    ) -> "SSESolution":
        """The cached solution for ``state``'s bucket, solving on a miss.

        Misses solve at the *actual* state (not the bucket center), so
        exact-mode caching reproduces the uncached results byte for byte.
        """
        key = self.key_for(state)
        cached = self._data.get(key)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        solution = solve(state)
        if self._max_entries is not None and len(self._data) >= self._max_entries:
            del self._data[next(iter(self._data))]
        self._data[key] = solution
        return solution

    def clear(self) -> None:
        """Drop all entries, the counters, and the configuration binding."""
        self._data.clear()
        self._hits = 0
        self._misses = 0
        self._fingerprint = None


def _quantize(value: float, step: float) -> float:
    """Exact float identity for step 0; otherwise the grid-bucket index.

    Returning the *index* (not ``index * step``) keeps keys free of
    floating-point grid noise.
    """
    if step <= 0.0:
        return float(value)
    return float(round(value / step))
