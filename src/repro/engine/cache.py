"""State-keyed cache of online-SSE solutions, with certified accuracy.

An audit cycle revisits near-identical game states thousands of times: the
remaining budget drifts by tiny per-alert charges and the Poisson rate
estimates move slowly between alerts. This module turns repeated
``solve_online_sse`` calls at such states into dictionary lookups.

Keys are built from ``(budget, lambdas)`` with configurable quantization:

* ``budget_step == 0`` / ``rate_step == 0`` (the default) keys on the exact
  float values — a hit requires a byte-identical state, so cached results
  are indistinguishable from uncached solving (used by replayed cycles,
  repeated Monte Carlo trials, and the correctness tests);
* positive steps snap budgets / rates to grid buckets. Without an
  ``error_budget`` this is the legacy *lossy* mode: a hit returns the
  solution of a state up to half a step away, and nothing bounds how far
  the game value has moved in between — fine for throughput studies,
  wrong for anything that reads the values.

``error_budget`` turns the lossy mode into a **certified** one. Every
cached solution carries a :class:`~repro.core.sse.SolutionCertificate` —
the winning candidate's value margin over the runner-up, per-state
Lipschitz bounds (slope ``max_t coef_t * span_t`` in the budget,
reciprocal-moment sensitivity in each rate), and the exact feasibility
structure. A lookup inside a bucket only counts as a hit when the
certificate bounds the game-value error *at the queried state* within
``error_budget``; the served solution is then not the stale cached one but
an exact single-candidate re-solve
(:func:`repro.engine.analytic.refine_candidate_solution`) of the certified
winning candidate — cheap because the candidate scan, the expensive part,
is skipped. Uncertifiable states re-solve in full and are **re-keyed**
into the same bucket, so hot regions where the value moves fast accumulate
entries — an adaptively refined grid — while flat regions stay coarse.

Keys cover the *state* only — the game configuration (payoffs, costs,
backend) is assumed fixed for the cache's lifetime. Consumers that inject a
cache into a game declare that configuration via :meth:`SSESolutionCache.bind`,
which raises if the same cache is later attached to a differing
configuration (sharing across configurations would silently return the
wrong equilibria).

Counters reconcile by construction: ``hits + misses == calls``, and in
certified mode ``refinements <= hits`` counts the hits served through the
single-candidate re-solve (the rest matched a cached state exactly).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ModelError

if TYPE_CHECKING:  # imported for type checking only; no runtime dependency
    from repro.core.sse import GameState, SSESolution

#: A cache key: the quantized budget plus the quantized per-type rates.
CacheKey = tuple[float, tuple[tuple[int, float], ...]]

#: Default quantization grid for the certified adaptive policy: coarse
#: buckets keep the index small; the certificate, not the grid, bounds
#: the error.
DEFAULT_ADAPTIVE_BUDGET_STEP = 0.5
DEFAULT_ADAPTIVE_RATE_STEP = 1.0

#: Default certified game-value error budget of the adaptive policy.
DEFAULT_ERROR_BUDGET = 1e-6


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of a cache's counters."""

    hits: int
    misses: int
    entries: int
    refinements: int = 0

    @property
    def calls(self) -> int:
        """Total lookups served (``hits + misses``)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when unused)."""
        return self.hits / self.calls if self.calls else 0.0

    @classmethod
    def merge(cls, snapshots: "list[CacheStats] | tuple[CacheStats, ...]") -> "CacheStats":
        """Combine snapshots of *disjoint* caches (e.g. one per worker).

        Counters add; ``entries`` adds too because each worker owns its own
        cache (the suite's sharded runner never shares cache objects across
        processes). The merged snapshot still reconciles:
        ``hits + misses == calls``.
        """
        return cls(
            hits=sum(s.hits for s in snapshots),
            misses=sum(s.misses for s in snapshots),
            entries=sum(s.entries for s in snapshots),
            refinements=sum(s.refinements for s in snapshots),
        )


@dataclass(frozen=True)
class _CacheEntry:
    """One cached solve: the exact state it was computed at, plus the result."""

    budget: float
    lambdas: dict[int, float]
    solution: "SSESolution"

    def matches(self, state: "GameState") -> bool:
        """Whether ``state`` is byte-identical to the solved state."""
        return state.budget == self.budget and state.lambdas == self.lambdas


class SSESolutionCache:
    """Quantizing ``GameState -> SSESolution`` memo with LRU-ish eviction.

    Parameters
    ----------
    budget_step:
        Quantization step for the remaining budget; 0 keys on the exact
        value.
    rate_step:
        Quantization step for each per-type Poisson rate; 0 keys exactly.
    max_entries:
        Optional size bound; the oldest entry is evicted once exceeded
        (insertion order — within a cycle, states drift monotonically, so
        old entries are the least likely to recur).
    error_budget:
        ``None`` (default) keeps the legacy semantics: any lookup landing
        in an occupied bucket returns that bucket's solution, however far
        the state has drifted. A non-negative float enables the certified
        adaptive mode described in the module docstring: cross-state
        reuse only happens when a cached
        :class:`~repro.core.sse.SolutionCertificate` bounds the
        game-value error at the queried state within this budget, and the
        hit is served through an exact single-candidate re-solve. The
        quantized buckets are the adaptive mode's *search index*, so when
        both steps are left at 0 they default to the adaptive grid
        (:data:`DEFAULT_ADAPTIVE_BUDGET_STEP` /
        :data:`DEFAULT_ADAPTIVE_RATE_STEP`) — exact keys would put every
        nearby state in its own bucket and the certificates could never
        engage.
    """

    def __init__(
        self,
        budget_step: float = 0.0,
        rate_step: float = 0.0,
        max_entries: int | None = None,
        error_budget: float | None = None,
    ) -> None:
        if budget_step < 0 or rate_step < 0:
            raise ModelError("quantization steps must be non-negative")
        if max_entries is not None and max_entries <= 0:
            raise ModelError(f"max_entries must be positive, got {max_entries}")
        if error_budget is not None and not error_budget >= 0:
            raise ModelError(
                f"error_budget must be non-negative, got {error_budget}"
            )
        if error_budget is not None and budget_step == 0 and rate_step == 0:
            budget_step = DEFAULT_ADAPTIVE_BUDGET_STEP
            rate_step = DEFAULT_ADAPTIVE_RATE_STEP
        self._budget_step = float(budget_step)
        self._rate_step = float(rate_step)
        self._max_entries = max_entries
        self._error_budget = None if error_budget is None else float(error_budget)
        self._data: dict[CacheKey, list[_CacheEntry]] = {}
        self._n_entries = 0
        self._hits = 0
        self._misses = 0
        self._refinements = 0
        self._fingerprint: object | None = None

    @property
    def budget_step(self) -> float:
        """Budget quantization step (0 = exact)."""
        return self._budget_step

    @property
    def rate_step(self) -> float:
        """Rate quantization step (0 = exact)."""
        return self._rate_step

    @property
    def error_budget(self) -> float | None:
        """Certified game-value error budget (None = legacy lossy mode)."""
        return self._error_budget

    @property
    def hits(self) -> int:
        """Lookups answered from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that required a fresh full solve."""
        return self._misses

    @property
    def refinements(self) -> int:
        """Hits served through the certified single-candidate re-solve."""
        return self._refinements

    @property
    def stats(self) -> CacheStats:
        """Current counters as an immutable snapshot."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            entries=self._n_entries,
            refinements=self._refinements,
        )

    def __len__(self) -> int:
        return self._n_entries

    def bind(self, fingerprint: object) -> None:
        """Tie this cache to one solve configuration.

        The first call records ``fingerprint`` (any equality-comparable
        description of what determines a solution besides the state —
        payoffs, costs, backend). Later calls with an *equal* fingerprint
        are no-ops; a differing one raises, because cached entries keyed
        only on ``(budget, lambdas)`` would be wrong answers under the new
        configuration. :meth:`clear` resets the binding along with the
        entries.
        """
        if self._fingerprint is None:
            self._fingerprint = fingerprint
        elif self._fingerprint != fingerprint:
            raise ModelError(
                "SSESolutionCache is bound to a different solve "
                "configuration; use a fresh cache (or clear() this one) "
                "when payoffs, costs, or the backend change"
            )

    def key_for(self, state: "GameState") -> CacheKey:
        """The quantized key under which ``state`` is cached."""
        return (
            _quantize(state.budget, self._budget_step),
            tuple(
                (type_id, _quantize(lam, self._rate_step))
                for type_id, lam in sorted(state.lambdas.items())
            ),
        )

    def get_or_solve(
        self,
        state: "GameState",
        solve: Callable[["GameState"], "SSESolution"],
        coefficients: Callable[["GameState"], Mapping[int, float]] | None = None,
        refine: "Callable[[int, GameState], SSESolution | None] | None" = None,
    ) -> "SSESolution":
        """The solution for ``state``, solving (or refining) on demand.

        Misses solve at the *actual* state (not the bucket center), so
        exact-mode caching reproduces the uncached results byte for byte.

        In certified mode (``error_budget`` set), ``coefficients`` must
        map a state to its theta coefficients and ``refine`` must re-solve
        one named candidate exactly at a state; both are supplied by
        :class:`~repro.core.game.SignalingAuditGame`. Without them the
        certified mode degrades gracefully to exact-state matching.
        """
        key = self.key_for(state)
        entries = self._data.get(key)
        if self._error_budget is None:
            if entries is not None:
                self._hits += 1
                return entries[0].solution
            return self._insert(key, state, solve(state))

        if entries is not None:
            # Newest entries first: in a drifting stream the most recent
            # solve is both the closest state and the tightest certificate.
            for entry in reversed(entries):
                if entry.matches(state):
                    self._hits += 1
                    return entry.solution
            if coefficients is not None and refine is not None:
                queried = coefficients(state)
                for entry in reversed(entries):
                    certificate = entry.solution.certificate
                    if certificate is None:
                        continue
                    error = certificate.certified_error(state.budget, queried)
                    if error is None or error > self._error_budget:
                        continue
                    refined = refine(certificate.winner, state)
                    if refined is not None:
                        self._hits += 1
                        self._refinements += 1
                        return refined
        return self._insert(key, state, solve(state))

    def _insert(
        self, key: CacheKey, state: "GameState", solution: "SSESolution"
    ) -> "SSESolution":
        self._misses += 1
        if self._max_entries is not None and self._n_entries >= self._max_entries:
            oldest_key = next(iter(self._data))
            bucket = self._data[oldest_key]
            bucket.pop(0)
            if not bucket:
                del self._data[oldest_key]
            self._n_entries -= 1
        self._data.setdefault(key, []).append(
            _CacheEntry(
                budget=state.budget,
                lambdas=dict(state.lambdas),
                solution=solution,
            )
        )
        self._n_entries += 1
        return solution

    def clear(self) -> None:
        """Drop all entries, the counters, and the configuration binding."""
        self._data.clear()
        self._n_entries = 0
        self._hits = 0
        self._misses = 0
        self._refinements = 0
        self._fingerprint = None


def _quantize(value: float, step: float) -> float:
    """Exact float identity for step 0; otherwise the grid-bucket index.

    Returning the *index* (not ``index * step``) keeps keys free of
    floating-point grid noise.
    """
    if step <= 0.0:
        return float(value)
    return float(round(value / step))
