"""Batch alert-stream engine: whole-cycle processing over alert arrays.

The per-alert API (:meth:`repro.core.game.SignalingAuditGame.process_alert`)
is the paper-faithful interface, but heavy-traffic workloads arrive as
streams. :class:`BatchAuditEngine` consumes whole cycles — parallel arrays
of ``(type_id, time_of_day)`` — and drives a :class:`SignalingAuditGame`
configured for throughput:

* the vectorized analytic SSE solver (:mod:`repro.engine.analytic`) instead
  of per-candidate generic LPs (the game's ``backend`` is honored, so the
  same engine also benchmarks the LP backends);
* a state-keyed :class:`~repro.engine.cache.SSESolutionCache`, so revisited
  (or quantization-equivalent) states become dictionary lookups;
* one shared Poisson reciprocal-moment memo for the whole engine lifetime.

The alert-by-alert loop itself cannot be collapsed: the budget path is
sequential (each charge depends on the sampled signal of the previous
alert). Everything around it can — the engine evaluates the Theorem-3
closed-form OSSP over the *whole batch* of recorded marginals in one NumPy
pass (:func:`batch_closed_form_ossp`), and reports per-cycle
:class:`EngineStats` (solves, cache hits, wall time).
"""

from __future__ import annotations

import time as _time
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError, PayoffError
from repro.core.game import AlertDecision, SAGConfig, SignalingAuditGame
from repro.core.payoffs import PayoffMatrix
from repro.engine.cache import SSESolutionCache
from repro.stats.estimator import RollbackEstimator
from repro.stats.poisson import PoissonReciprocalMoment

#: Sentinel distinguishing "no cache argument" from an explicit ``None``.
_DEFAULT_CACHE = object()


def batch_closed_form_ossp(
    thetas: np.ndarray, payoff: PayoffMatrix
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Theorem 3's closed-form OSSP over an array of marginals.

    Vectorized counterpart of
    :func:`repro.core.signaling.solve_ossp_closed_form`: given marginals
    ``thetas`` (all for one payoff matrix), returns the stacked
    ``(p1, q1, p0, q0)`` arrays. Requires the Theorem 3 payoff condition
    ``U_ac U_du - U_dc U_au > 0``.
    """
    if not payoff.satisfies_theorem3_condition():
        raise PayoffError(
            "batched closed-form OSSP requires U_ac*U_du - U_dc*U_au > 0; "
            "solve via the LP instead"
        )
    thetas = np.asarray(thetas, dtype=float)
    beta = thetas * payoff.u_ac + (1.0 - thetas) * payoff.u_au
    deterred = beta <= 0.0
    q0 = np.where(deterred, 0.0, beta / payoff.u_au)
    q1 = np.where(deterred, 1.0 - thetas, np.clip(1.0 - thetas - q0, 0.0, None))
    p1 = thetas
    p0 = np.zeros_like(thetas)
    return p1, q1, p0, q0


def batch_ossp_auditor_utility(
    thetas: np.ndarray, payoff: PayoffMatrix
) -> np.ndarray:
    """Auditor's OSSP value ``p0 U_dc + q0 U_du`` over an array of marginals.

    Under the Theorem 3 condition this is ``(U_du / U_au) * max(0, beta)``
    with ``beta`` the attacker's expected utility at each marginal — one
    fused expression instead of a per-theta scheme construction.
    """
    if not payoff.satisfies_theorem3_condition():
        raise PayoffError(
            "batched OSSP value requires U_ac*U_du - U_dc*U_au > 0; "
            "solve via the LP instead"
        )
    thetas = np.asarray(thetas, dtype=float)
    beta = thetas * payoff.u_ac + (1.0 - thetas) * payoff.u_au
    return (payoff.u_du / payoff.u_au) * np.clip(beta, 0.0, None)


def batch_sse_auditor_utility(
    thetas: np.ndarray, payoff: PayoffMatrix
) -> np.ndarray:
    """No-signaling auditor value over an array of marginals."""
    thetas = np.asarray(thetas, dtype=float)
    return thetas * payoff.u_dc + (1.0 - thetas) * payoff.u_du


@dataclass(frozen=True)
class EngineStats:
    """Per-cycle accounting of the engine's solver work.

    ``sse_solves`` counts actual LP (2) evaluations; with a cache attached
    it equals the cache misses of the cycle and
    ``sse_solves + cache_hits == alerts``.
    """

    alerts: int
    sse_solves: int
    cache_hits: int
    cache_entries: int
    wall_seconds: float
    backend: str

    @property
    def hit_rate(self) -> float:
        """Fraction of per-alert solves served from the cache."""
        return self.cache_hits / self.alerts if self.alerts else 0.0

    @property
    def alerts_per_second(self) -> float:
        """Processed alert throughput (0 when the clock read as instant)."""
        return self.alerts / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @classmethod
    def merge(cls, shards: Sequence["EngineStats"]) -> "EngineStats":
        """Combine per-shard accounting into one aggregate.

        Used by the scenario suite's sharded runner, where each worker
        process drives its own engine/cache. Counters and entries add
        (worker caches are disjoint); ``wall_seconds`` adds too, so the
        merged figure is the total worker-side processing time across
        shards (whatever each shard measured — whole-trial time in the
        suite), not elapsed wall-clock (shards overlap in real time).
        """
        if not shards:
            raise ExperimentError("cannot merge zero EngineStats shards")
        backends = {shard.backend for shard in shards}
        if len(backends) != 1:
            raise ExperimentError(
                f"cannot merge stats across backends: {sorted(backends)}"
            )
        return cls(
            alerts=sum(s.alerts for s in shards),
            sse_solves=sum(s.sse_solves for s in shards),
            cache_hits=sum(s.cache_hits for s in shards),
            cache_entries=sum(s.cache_entries for s in shards),
            wall_seconds=float(sum(s.wall_seconds for s in shards)),
            backend=shards[0].backend,
        )


@dataclass(frozen=True)
class StreamResult:
    """Arrays-of-structs view of one processed cycle.

    ``ossp_utilities`` is recomputed from the recorded marginals through the
    *batched* Theorem-3 closed form wherever it applies (falling back to
    the per-decision value otherwise) — a vectorized derivation that doubles
    as a cross-check of the per-alert pipeline.
    """

    type_ids: np.ndarray
    times: np.ndarray
    thetas: np.ndarray
    game_values: np.ndarray
    ossp_utilities: np.ndarray
    audit_probabilities: np.ndarray
    warned: np.ndarray
    budget_path: np.ndarray
    stats: EngineStats
    decisions: tuple[AlertDecision, ...]

    @property
    def final_budget(self) -> float:
        """Budget remaining after the last alert."""
        return float(self.budget_path[-1]) if self.budget_path.size else 0.0


class BatchAuditEngine:
    """Stream-oriented front end over :class:`SignalingAuditGame`.

    Parameters
    ----------
    config:
        Game configuration. For the fast path use ``backend="analytic"``
        (:func:`analytic_config` builds one).
    estimator:
        Rollback-aware future-alert estimator for the cycle.
    rng:
        Signal-sampling randomness (defaults to a fresh deterministic
        generator, as in the game).
    cache:
        SSE solution cache. Defaults to a fresh exact-mode
        :class:`SSESolutionCache`; pass quantization steps via your own
        instance, or ``None`` to disable caching entirely.
    cache_error_budget:
        Convenience for the certified adaptive policy: when set (and
        ``cache`` is left at its default), the engine builds an
        error-bounded cache — the cache itself defaults its search index
        to the adaptive grid — whose cross-state reuse is certified
        within this game-value budget. Incompatible with an explicit
        ``cache`` instance; configure the instance directly in that case.
    moment:
        Optional shared reciprocal-moment memo.
    """

    def __init__(
        self,
        config: SAGConfig,
        estimator: RollbackEstimator,
        rng: np.random.Generator | None = None,
        cache: SSESolutionCache | None | object = _DEFAULT_CACHE,
        moment: PoissonReciprocalMoment | None = None,
        cache_error_budget: float | None = None,
    ) -> None:
        if cache is _DEFAULT_CACHE:
            cache = SSESolutionCache(error_budget=cache_error_budget)
        elif cache_error_budget is not None:
            raise ExperimentError(
                "cache_error_budget only applies to the engine's default "
                "cache; set error_budget on the explicit cache instead"
            )
        elif cache is not None and not isinstance(cache, SSESolutionCache):
            raise ExperimentError(
                f"cache must be an SSESolutionCache or None, got {cache!r}"
            )
        self._cache = cache
        self._game = SignalingAuditGame(
            config,
            estimator,
            rng=rng,
            moment=moment,
            solution_cache=self._cache,
        )

    @property
    def game(self) -> SignalingAuditGame:
        """The underlying per-alert game."""
        return self._game

    @property
    def cache(self) -> SSESolutionCache | None:
        """The SSE solution cache, when caching is enabled."""
        return self._cache

    def reset(self) -> None:
        """Start a fresh audit cycle (cache contents are kept — states from
        previous cycles stay valid lookups)."""
        self._game.reset()

    def process_stream(
        self,
        type_ids: Sequence[int] | np.ndarray,
        times: Sequence[float] | np.ndarray,
    ) -> StreamResult:
        """Run one whole cycle over parallel ``(type_id, time)`` arrays."""
        type_arr = np.asarray(type_ids, dtype=int)
        time_arr = np.asarray(times, dtype=float)
        if type_arr.ndim != 1 or type_arr.shape != time_arr.shape:
            raise ExperimentError(
                "type_ids and times must be parallel one-dimensional arrays"
            )
        if type_arr.size == 0:
            raise ExperimentError("cannot process an empty alert stream")
        if np.any(np.diff(time_arr) < 0):
            raise ExperimentError("alert stream must be chronological")

        hits_before = self._cache.hits if self._cache is not None else 0
        misses_before = self._cache.misses if self._cache is not None else 0
        started = _time.perf_counter()
        decisions = [
            self._game.process_alert(int(t), float(s))
            for t, s in zip(type_arr, time_arr)
        ]
        wall = _time.perf_counter() - started

        n = type_arr.size
        if self._cache is not None:
            cache_hits = self._cache.hits - hits_before
            sse_solves = self._cache.misses - misses_before
            entries = len(self._cache)
        else:
            cache_hits, sse_solves, entries = 0, n, 0
        stats = EngineStats(
            alerts=n,
            sse_solves=sse_solves,
            cache_hits=cache_hits,
            cache_entries=entries,
            wall_seconds=wall,
            backend=self._game.config.backend,
        )

        thetas = np.array([d.theta for d in decisions])
        return StreamResult(
            type_ids=type_arr,
            times=time_arr,
            thetas=thetas,
            game_values=np.array([d.game_value for d in decisions]),
            ossp_utilities=self._batched_ossp_utilities(type_arr, thetas, decisions),
            audit_probabilities=np.array([d.audit_probability for d in decisions]),
            warned=np.array([d.warned for d in decisions], dtype=bool),
            budget_path=np.array([d.budget_after for d in decisions]),
            stats=stats,
            decisions=tuple(decisions),
        )

    def run_cycle(
        self,
        type_ids: Sequence[int] | np.ndarray,
        times: Sequence[float] | np.ndarray,
    ) -> StreamResult:
        """Deprecated alias of :meth:`process_stream`.

        The serving façade (:class:`repro.api.v1.AuditSession`) is the
        supported way to drive whole cycles; this alias keeps old callers
        of the pre-façade name working.
        """
        import warnings

        warnings.warn(
            "BatchAuditEngine.run_cycle is deprecated; use "
            "repro.api.v1.AuditSession.decide_batch (or process_stream "
            "when driving the engine directly)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.process_stream(type_ids, times)

    def _batched_ossp_utilities(
        self,
        type_arr: np.ndarray,
        thetas: np.ndarray,
        decisions: list[AlertDecision],
    ) -> np.ndarray:
        """Per-alert OSSP values, one vectorized pass per alert type.

        The batched closed form applies exactly when the per-alert pipeline
        itself used it: signaling applied, classic (non-robust) OSSP, and
        the Theorem 3 payoff condition. All other alerts keep their recorded
        per-decision value.
        """
        values = np.array([d.ossp_utility for d in decisions])
        config = self._game.config
        if (
            not config.signaling_enabled
            or config.robust_margin > 0
            or config.signaling_method != "closed_form"
        ):
            return values
        applied = np.array([d.signaling_applied for d in decisions], dtype=bool)
        for type_id in np.unique(type_arr):
            payoff = config.payoffs[int(type_id)]
            if not payoff.satisfies_theorem3_condition():
                continue
            mask = (type_arr == type_id) & applied
            if np.any(mask):
                values[mask] = batch_ossp_auditor_utility(thetas[mask], payoff)
        return values


def analytic_config(config: SAGConfig) -> SAGConfig:
    """A copy of ``config`` switched to the analytic solver backend."""
    from dataclasses import replace

    return replace(config, backend="analytic")
