"""Batch alert-stream engine: whole-cycle processing over alert arrays.

The per-alert API (:meth:`repro.core.game.SignalingAuditGame.process_alert`)
is the paper-faithful interface, but heavy-traffic workloads arrive as
streams. :class:`BatchAuditEngine` consumes whole cycles — parallel arrays
of ``(type_id, time_of_day)`` — and drives a :class:`SignalingAuditGame`
configured for throughput:

* the vectorized analytic SSE solver (:mod:`repro.engine.analytic`) instead
  of per-candidate generic LPs (the game's ``backend`` is honored, so the
  same engine also benchmarks the LP backends);
* a state-keyed :class:`~repro.engine.cache.SSESolutionCache`, so revisited
  (or quantization-equivalent) states become dictionary lookups;
* one shared Poisson reciprocal-moment memo for the whole engine lifetime.

The alert-by-alert loop itself cannot be collapsed: the budget path is
sequential (each charge depends on the sampled signal of the previous
alert). Everything around it can — the engine evaluates the Theorem-3
closed-form OSSP over the *whole batch* of recorded marginals in one NumPy
pass (:func:`batch_closed_form_ossp`), and reports per-cycle
:class:`EngineStats` (solves, cache hits, wall time).
"""

from __future__ import annotations

import time as _time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ExperimentError, PayoffError
from repro.core.budget import SpendRecord
from repro.core.game import (
    CHARGE_EXPECTED,
    SCOPE_ALL,
    AlertDecision,
    SAGConfig,
    SignalingAuditGame,
)
from repro.core.payoffs import PayoffMatrix
from repro.core.signaling import _PROB_TOL, SignalingScheme
from repro.core.sse import SSESolution
from repro.engine.cache import SSESolutionCache
from repro.stats.estimator import RollbackEstimator
from repro.stats.poisson import PoissonReciprocalMoment

if TYPE_CHECKING:  # policy_table builds on this module's stats
    from repro.engine.policy_table import CompiledPolicy

_new = object.__new__
_setattr = object.__setattr__

#: Sentinel distinguishing "no cache argument" from an explicit ``None``.
_DEFAULT_CACHE = object()


def batch_closed_form_ossp(
    thetas: np.ndarray, payoff: PayoffMatrix
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Theorem 3's closed-form OSSP over an array of marginals.

    Vectorized counterpart of
    :func:`repro.core.signaling.solve_ossp_closed_form`: given marginals
    ``thetas`` (all for one payoff matrix), returns the stacked
    ``(p1, q1, p0, q0)`` arrays. Requires the Theorem 3 payoff condition
    ``U_ac U_du - U_dc U_au > 0``.
    """
    if not payoff.satisfies_theorem3_condition():
        raise PayoffError(
            "batched closed-form OSSP requires U_ac*U_du - U_dc*U_au > 0; "
            "solve via the LP instead"
        )
    thetas = np.asarray(thetas, dtype=float)
    beta = thetas * payoff.u_ac + (1.0 - thetas) * payoff.u_au
    deterred = beta <= 0.0
    q0 = np.where(deterred, 0.0, beta / payoff.u_au)
    q1 = np.where(deterred, 1.0 - thetas, np.clip(1.0 - thetas - q0, 0.0, None))
    p1 = thetas
    p0 = np.zeros_like(thetas)
    return p1, q1, p0, q0


def batch_ossp_auditor_utility(
    thetas: np.ndarray, payoff: PayoffMatrix
) -> np.ndarray:
    """Auditor's OSSP value ``p0 U_dc + q0 U_du`` over an array of marginals.

    Under the Theorem 3 condition this is ``(U_du / U_au) * max(0, beta)``
    with ``beta`` the attacker's expected utility at each marginal — one
    fused expression instead of a per-theta scheme construction.
    """
    if not payoff.satisfies_theorem3_condition():
        raise PayoffError(
            "batched OSSP value requires U_ac*U_du - U_dc*U_au > 0; "
            "solve via the LP instead"
        )
    thetas = np.asarray(thetas, dtype=float)
    beta = thetas * payoff.u_ac + (1.0 - thetas) * payoff.u_au
    return (payoff.u_du / payoff.u_au) * np.clip(beta, 0.0, None)


def batch_sse_auditor_utility(
    thetas: np.ndarray, payoff: PayoffMatrix
) -> np.ndarray:
    """No-signaling auditor value over an array of marginals."""
    thetas = np.asarray(thetas, dtype=float)
    return thetas * payoff.u_dc + (1.0 - thetas) * payoff.u_du


@dataclass(frozen=True)
class EngineStats:
    """Per-cycle accounting of the engine's solver work.

    ``sse_solves`` counts actual LP (2) evaluations; with a cache attached
    it equals the cache misses of the cycle and
    ``sse_solves + cache_hits == alerts`` — except in policy-table mode,
    where ``table_hits + fallbacks == alerts`` and only the fallbacks flow
    through the solve/cache path (``sse_solves + cache_hits == fallbacks``).

    ``table_misses`` counts failed table lookups (out-of-region budget or
    rates, uncertified cells); every miss falls back, so it equals
    ``fallbacks`` for a single engine (the two can diverge under merges of
    mixed-mode shards). ``recompiles`` and ``compile_seconds`` report the
    table compilation work that landed since the previous stats snapshot
    (the initial compile is attributed to the first cycle).

    ``learning_cycles`` counts attacker-learning cycles folded into these
    stats (see :mod:`repro.learning`); ``regret``, ``posterior_entropy``
    and ``exploit_gap`` are the cycle-averaged learning diagnostics, 0.0
    when no learning attacker was attached. Merging averages them weighted
    by each shard's ``learning_cycles``.
    """

    alerts: int
    sse_solves: int
    cache_hits: int
    cache_entries: int
    wall_seconds: float
    backend: str
    table_hits: int = 0
    table_misses: int = 0
    fallbacks: int = 0
    recompiles: int = 0
    compile_seconds: float = 0.0
    learning_cycles: int = 0
    regret: float = 0.0
    posterior_entropy: float = 0.0
    exploit_gap: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of per-alert solves served from the cache."""
        return self.cache_hits / self.alerts if self.alerts else 0.0

    @property
    def table_hit_rate(self) -> float:
        """Fraction of alerts served straight from the policy table."""
        return self.table_hits / self.alerts if self.alerts else 0.0

    @property
    def alerts_per_second(self) -> float:
        """Processed alert throughput (0 when the clock read as instant)."""
        return self.alerts / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @classmethod
    def merge(cls, shards: Sequence["EngineStats"]) -> "EngineStats":
        """Combine per-shard accounting into one aggregate.

        Used by the scenario suite's sharded runner, where each worker
        process drives its own engine/cache. Counters and entries add
        (worker caches are disjoint); ``wall_seconds`` adds too, so the
        merged figure is the total worker-side processing time across
        shards (whatever each shard measured — whole-trial time in the
        suite), not elapsed wall-clock (shards overlap in real time).
        """
        if not shards:
            raise ExperimentError("cannot merge zero EngineStats shards")
        backends = {shard.backend for shard in shards}
        if len(backends) != 1:
            raise ExperimentError(
                f"cannot merge stats across backends: {sorted(backends)}"
            )
        learning_cycles = sum(s.learning_cycles for s in shards)

        def _learning_mean(metric: str) -> float:
            if learning_cycles == 0:
                return 0.0
            return (
                sum(getattr(s, metric) * s.learning_cycles for s in shards)
                / learning_cycles
            )

        return cls(
            alerts=sum(s.alerts for s in shards),
            sse_solves=sum(s.sse_solves for s in shards),
            cache_hits=sum(s.cache_hits for s in shards),
            cache_entries=sum(s.cache_entries for s in shards),
            wall_seconds=float(sum(s.wall_seconds for s in shards)),
            backend=shards[0].backend,
            table_hits=sum(s.table_hits for s in shards),
            table_misses=sum(s.table_misses for s in shards),
            fallbacks=sum(s.fallbacks for s in shards),
            recompiles=sum(s.recompiles for s in shards),
            compile_seconds=float(sum(s.compile_seconds for s in shards)),
            learning_cycles=learning_cycles,
            regret=_learning_mean("regret"),
            posterior_entropy=_learning_mean("posterior_entropy"),
            exploit_gap=_learning_mean("exploit_gap"),
        )


@dataclass(frozen=True)
class StreamResult:
    """Arrays-of-structs view of one processed cycle.

    ``ossp_utilities`` is recomputed from the recorded marginals through the
    *batched* Theorem-3 closed form wherever it applies (falling back to
    the per-decision value otherwise) — a vectorized derivation that doubles
    as a cross-check of the per-alert pipeline.
    """

    type_ids: np.ndarray
    times: np.ndarray
    thetas: np.ndarray
    game_values: np.ndarray
    ossp_utilities: np.ndarray
    audit_probabilities: np.ndarray
    warned: np.ndarray
    budget_path: np.ndarray
    stats: EngineStats
    decisions: tuple[AlertDecision, ...]

    @property
    def final_budget(self) -> float:
        """Budget remaining after the last alert."""
        return float(self.budget_path[-1]) if self.budget_path.size else 0.0


class BatchAuditEngine:
    """Stream-oriented front end over :class:`SignalingAuditGame`.

    Parameters
    ----------
    config:
        Game configuration. For the fast path use ``backend="analytic"``
        (:func:`analytic_config` builds one).
    estimator:
        Rollback-aware future-alert estimator for the cycle.
    rng:
        Signal-sampling randomness (defaults to a fresh deterministic
        generator, as in the game).
    cache:
        SSE solution cache. Defaults to a fresh exact-mode
        :class:`SSESolutionCache`; pass quantization steps via your own
        instance, or ``None`` to disable caching entirely.
    cache_error_budget:
        Convenience for the certified adaptive policy: when set (and
        ``cache`` is left at its default), the engine builds an
        error-bounded cache — the cache itself defaults its search index
        to the adaptive grid — whose cross-state reuse is certified
        within this game-value budget. Incompatible with an explicit
        ``cache`` instance; configure the instance directly in that case.
    moment:
        Optional shared reciprocal-moment memo.
    policy_table:
        Compile the cycle's reachable ``(budget, rates)`` region into a
        certified :class:`~repro.engine.policy_table.CompiledPolicy` and
        serve in-region alerts from it with zero solves; out-of-region
        states fall back to the solve/cache path. Requires the analytic
        backend (the compiled geometry *is* the analytic solver's).
    policy_table_options:
        Optional compiler keywords (``error_budget``, ``max_budget_cells``,
        ``max_columns``, ``budget_floor``) forwarded to
        :class:`~repro.engine.policy_table.PolicyTableCompiler`.
    """

    def __init__(
        self,
        config: SAGConfig,
        estimator: RollbackEstimator,
        rng: np.random.Generator | None = None,
        cache: SSESolutionCache | None | object = _DEFAULT_CACHE,
        moment: PoissonReciprocalMoment | None = None,
        cache_error_budget: float | None = None,
        policy_table: bool = False,
        policy_table_options: Mapping[str, object] | None = None,
    ) -> None:
        requested_error_budget = cache_error_budget
        if cache is _DEFAULT_CACHE:
            cache = SSESolutionCache(error_budget=cache_error_budget)
        elif cache_error_budget is not None:
            raise ExperimentError(
                "cache_error_budget only applies to the engine's default "
                "cache; set error_budget on the explicit cache instead"
            )
        elif cache is not None and not isinstance(cache, SSESolutionCache):
            raise ExperimentError(
                f"cache must be an SSESolutionCache or None, got {cache!r}"
            )
        self._cache = cache
        self._estimator = estimator
        self._game = SignalingAuditGame(
            config,
            estimator,
            rng=rng,
            moment=moment,
            solution_cache=self._cache,
        )
        self._policy: "CompiledPolicy | None" = None
        self._table_options: dict[str, object] = dict(policy_table_options or {})
        self._pending_recompiles = 0
        self._pending_compile_seconds = 0.0
        self._total_recompiles = 0
        self._total_compile_seconds = 0.0
        self._stale_columns = False
        self._stale_floor = False
        if policy_table_options is not None and not policy_table:
            raise ExperimentError(
                "policy_table_options given but policy_table is False"
            )
        if policy_table:
            if config.backend != "analytic":
                raise ExperimentError(
                    "policy_table requires backend='analytic'; the compiled "
                    f"geometry is the analytic solver's (got {config.backend!r})"
                )
            if (
                "error_budget" not in self._table_options
                and requested_error_budget is not None
            ):
                self._table_options["error_budget"] = requested_error_budget
            self._compile_table()

    def _compile_table(self) -> None:
        """(Re)compile the policy table for the current estimator state."""
        from repro.engine.policy_table import PolicyTableCompiler

        compiler = PolicyTableCompiler(
            self._game.config,
            self._estimator,
            moment=self._game.moment,
            **self._table_options,
        )
        policy = compiler.compile()
        self._policy = policy
        self._pending_compile_seconds += policy.compile_seconds
        self._total_compile_seconds += policy.compile_seconds
        self._stale_columns = False
        self._stale_floor = False

    @property
    def game(self) -> SignalingAuditGame:
        """The underlying per-alert game."""
        return self._game

    @property
    def cache(self) -> SSESolutionCache | None:
        """The SSE solution cache, when caching is enabled."""
        return self._cache

    @property
    def policy(self) -> "CompiledPolicy | None":
        """The compiled policy table, when table mode is on."""
        return self._policy

    @property
    def recompiles(self) -> int:
        """Lifetime count of table recompilations (initial compile excluded)."""
        return self._total_recompiles

    @property
    def compile_seconds(self) -> float:
        """Lifetime seconds spent compiling policy tables."""
        return self._total_compile_seconds

    def reset(self) -> None:
        """Start a fresh audit cycle (cache contents are kept — states from
        previous cycles stay valid lookups).

        In table mode, a region marked stale during the cycle — rates that
        drifted past the compiled trajectory prefix, or budget exhaustion
        below the grid floor — triggers a recompile over the widened
        region, so the next cycle serves those states from the table again.
        """
        self._game.reset()
        if self._policy is not None and (self._stale_columns or self._stale_floor):
            if self._stale_columns:
                self._table_options["max_columns"] = int(
                    self._policy.region.total_columns
                )
            if self._stale_floor:
                self._table_options["budget_floor"] = 0.0
            self._compile_table()
            self._pending_recompiles += 1
            self._total_recompiles += 1

    def process_stream(
        self,
        type_ids: Sequence[int] | np.ndarray,
        times: Sequence[float] | np.ndarray,
        batched_ossp: bool = True,
    ) -> StreamResult:
        """Run one whole cycle over parallel ``(type_id, time)`` arrays.

        ``batched_ossp=False`` skips the vectorized OSSP re-derivation and
        returns the per-decision values verbatim in ``ossp_utilities`` —
        the service's cross-tenant submit path sets this because it runs
        one stacked derivation over *all* tenants' marginals instead of
        one pass per tenant.
        """
        type_arr = np.asarray(type_ids, dtype=int)
        time_arr = np.asarray(times, dtype=float)
        if type_arr.ndim != 1 or type_arr.shape != time_arr.shape:
            raise ExperimentError(
                "type_ids and times must be parallel one-dimensional arrays"
            )
        if type_arr.size == 0:
            raise ExperimentError("cannot process an empty alert stream")
        if np.any(np.diff(time_arr) < 0):
            raise ExperimentError("alert stream must be chronological")

        hits_before = self._cache.hits if self._cache is not None else 0
        misses_before = self._cache.misses if self._cache is not None else 0
        started = _time.perf_counter()
        if self._policy is not None:
            decisions, table_hits, fallbacks = self._table_stream(
                type_arr, time_arr
            )
        else:
            decisions = [
                self._game.process_alert(int(t), float(s))
                for t, s in zip(type_arr, time_arr)
            ]
            table_hits, fallbacks = 0, 0
        wall = _time.perf_counter() - started

        n = type_arr.size
        solved = n if self._policy is None else fallbacks
        if self._cache is not None:
            cache_hits = self._cache.hits - hits_before
            sse_solves = self._cache.misses - misses_before
            entries = len(self._cache)
        else:
            cache_hits, sse_solves, entries = 0, solved, 0
        recompiles = self._pending_recompiles
        compile_seconds = self._pending_compile_seconds
        self._pending_recompiles = 0
        self._pending_compile_seconds = 0.0
        stats = EngineStats(
            alerts=n,
            sse_solves=sse_solves,
            cache_hits=cache_hits,
            cache_entries=entries,
            wall_seconds=wall,
            backend=self._game.config.backend,
            table_hits=table_hits,
            table_misses=fallbacks,
            fallbacks=fallbacks,
            recompiles=recompiles,
            compile_seconds=compile_seconds,
        )

        thetas = np.array([d.theta for d in decisions])
        return StreamResult(
            type_ids=type_arr,
            times=time_arr,
            thetas=thetas,
            game_values=np.array([d.game_value for d in decisions]),
            ossp_utilities=(
                self._batched_ossp_utilities(type_arr, thetas, decisions)
                if batched_ossp
                else np.array([d.ossp_utility for d in decisions])
            ),
            audit_probabilities=np.array([d.audit_probability for d in decisions]),
            warned=np.array([d.warned for d in decisions], dtype=bool),
            budget_path=np.array([d.budget_after for d in decisions]),
            stats=stats,
            decisions=tuple(decisions),
        )

    def _table_stream(
        self, type_arr: np.ndarray, time_arr: np.ndarray
    ) -> tuple[list[AlertDecision], int, int]:
        """One cycle through the compiled policy table.

        The estimator's rollback-anchor recursion and the trajectory-row
        placement are precomputed for the whole batch in NumPy; the
        sequential residue — the budget path, the signal draws, and the
        decision objects — runs in a tight scalar loop that touches only
        Python floats, tuples and bytes. Alerts that miss the table (rates
        past the compiled prefix, budget off the grid, uncertified cells)
        drop to :meth:`SignalingAuditGame.process_alert` after syncing the
        estimator anchor and flushing the buffered ledger state, so the
        fallback decision is bit-identical to the plain cache path.
        """
        policy = self._policy
        assert policy is not None
        game = self._game
        est = self._estimator
        ledger = game.ledger

        anchor0 = est.anchor_time
        if time_arr[0] < anchor0:
            # A prior batch in this cycle saw later times; the anchor
            # recursion cannot be replayed from here. Keep the exact path.
            decisions = [
                game.process_alert(int(t), float(s))
                for t, s in zip(type_arr, time_arr)
            ]
            return decisions, 0, len(decisions)

        rows = np.searchsorted(policy.boundaries, time_arr, side="right")
        rich = policy.totals[rows] >= est.threshold
        anchor_after = np.maximum.accumulate(
            np.where(rich, time_arr, anchor0)
        )
        anchor_before = np.empty_like(anchor_after)
        anchor_before[0] = anchor0
        anchor_before[1:] = anchor_after[:-1]
        if est.enabled:
            effective = np.where(rich, time_arr, anchor_before)
            columns = np.searchsorted(policy.boundaries, effective, side="right")
        else:
            columns = rows

        # Scalarize once; the loop below must not touch NumPy.
        columns_l = columns.tolist()
        types_l = type_arr.tolist()
        times_l = time_arr.tolist()
        anchors_l = anchor_before.tolist()

        region = policy.region
        n_columns = region.columns
        floor = region.budget_floor
        ceiling = region.budget_ceiling
        inv_step = 1.0 / region.budget_step
        last_cell = region.budget_cells - 1
        valid_l = policy.valid
        winner_l = policy.winner
        g_l = policy.g
        xs_l = policy.xs
        a_l = policy.a
        b_l = policy.b
        inv_coef_l = policy.inv_coef
        type_ids = policy.type_ids
        index_of = policy.index_of
        n_types = len(type_ids)
        u_du = policy.u_du
        u_dc = policy.u_dc
        u_au = policy.u_au
        gap = policy.gap
        span = policy.span
        costs = policy.costs
        labels = tuple(f"type={t}" for t in type_ids)

        config = game.config
        signaling = config.signaling_enabled
        scope_all = config.scope == SCOPE_ALL
        charge_expected = config.budget_charging == CHARGE_EXPECTED
        rng_random = game.rng.random
        record = game.record_decision
        process_alert = game.process_alert
        scan = policy.scan

        rem = ledger.remaining
        pending: list[SpendRecord] = []
        pending_append = pending.append
        out: list[AlertDecision] = []
        out_append = out.append
        hits = 0
        falls = 0

        for i in range(len(types_l)):
            alert_type = types_l[i]
            t_local = index_of.get(alert_type)
            column = columns_l[i]
            budget = rem
            winner = -1
            if (
                t_local is not None
                and column < n_columns
                and floor <= budget <= ceiling
            ):
                cell = int((budget - floor) * inv_step)
                if cell > last_cell:
                    cell = last_cell
                if valid_l[column][cell]:
                    winner = winner_l[column][cell]
                    # Exact water-filling at the queried budget (same
                    # arithmetic as CompiledPolicy.water_fill, inlined).
                    gs = g_l[column][winner]
                    xw = xs_l[winner]
                    m = len(gs)
                    k = 0
                    in_budget = budget + 1e-9
                    while k + 1 < m and gs[k + 1] <= in_budget:
                        k += 1
                    if k == m - 1:
                        x = xw[k]
                    else:
                        g_lo = gs[k]
                        dg = gs[k + 1] - g_lo
                        x_lo = xw[k]
                        if dg <= 0.0:
                            x = x_lo
                        else:
                            x_hi = xw[k + 1]
                            x = x_lo + (budget - g_lo) * (x_hi - x_lo) / dg
                            if x < x_lo:
                                x = x_lo
                            elif x > x_hi:
                                x = x_hi
                else:
                    # Uncertified cell (winner handoff): exact zero-solve
                    # scan over every candidate at this precise budget.
                    found = scan(column, budget)
                    if found is not None:
                        winner, x = found
            if winner < 0:
                # Fallback: hand the buffered sequential state back to the
                # stateful objects, then run the exact per-alert pipeline.
                est.sync_anchor(anchors_l[i])
                if pending:
                    ledger.sync(rem, pending)
                    pending.clear()
                decision = process_alert(alert_type, times_l[i])
                rem = ledger.remaining
                out_append(decision)
                falls += 1
                continue

            aw = a_l[winner]
            bw = b_l[winner]
            inv = inv_coef_l[column]
            thetas = {}
            allocations = {}
            for j in range(n_types):
                if j == winner:
                    theta_j = x
                else:
                    theta_j = aw[j] + bw[j] * x
                    if theta_j < 0.0:
                        theta_j = 0.0
                    elif theta_j > 1.0:
                        theta_j = 1.0
                thetas[type_ids[j]] = theta_j
                allocations[type_ids[j]] = theta_j * inv[j]
            attacker = u_au[winner] + x * gap[winner]
            auditor = u_du[winner] + x * span[winner]
            sse = _new(SSESolution)
            _setattr(sse, "__dict__", {
                "thetas": thetas,
                "allocations": allocations,
                "best_response": type_ids[winner],
                "auditor_utility": auditor,
                "attacker_utility": attacker,
                "lps_solved": 0,
                "lps_feasible": 0,
                "certificate": None,
            })

            theta = thetas[alert_type]
            sse_utility = theta * u_dc[t_local] + (1.0 - theta) * u_du[t_local]
            if signaling:
                # Game value: the BR type's OSSP objective, via the same
                # closed-form float path as solve_ossp_closed_form.
                if attacker <= 0.0:
                    game_value = 0.0 * u_dc[winner] + 0.0 * u_du[winner]
                else:
                    game_value = 0.0 * u_dc[winner] + (
                        attacker / u_au[winner]
                    ) * u_du[winner]
                applied = scope_all or t_local == winner
            else:
                game_value = 0.0 if attacker < 0.0 else auditor
                applied = False

            if applied:
                beta = attacker if t_local == winner else (
                    u_au[t_local] + theta * gap[t_local]
                )
                if beta <= 0.0:
                    p1 = theta
                    q1 = 1.0 - theta
                    p0 = 0.0
                    q0 = 0.0
                    ossp_utility = p0 * u_dc[t_local] + q0 * u_du[t_local]
                else:
                    q0 = beta / u_au[t_local]
                    q1 = 1.0 - theta - q0
                    if q1 < 0.0:
                        q1 = 0.0
                    p1 = theta
                    p0 = 0.0
                    ossp_utility = p0 * u_dc[t_local] + q0 * u_du[t_local]
                scheme = _new(SignalingScheme)
                _setattr(scheme, "__dict__", {
                    "p1": p1, "q1": q1, "p0": p0, "q0": q0,
                })
                warning_probability = p1 + q1
                warned = rng_random() < warning_probability
                if warned:
                    audit_probability = (
                        p1 / warning_probability
                        if warning_probability > _PROB_TOL
                        else 0.0
                    )
                else:
                    silence = p0 + q0
                    audit_probability = (
                        p0 / silence if silence > _PROB_TOL else 0.0
                    )
            else:
                scheme = None
                ossp_utility = sse_utility
                warned = False
                audit_probability = theta

            amount = (
                theta if charge_expected else audit_probability
            ) * costs[t_local]
            charged = amount if amount < rem else rem
            rem = budget - charged
            spend = _new(SpendRecord)
            _setattr(spend, "__dict__", {
                "time_of_day": times_l[i],
                "amount": charged,
                "label": labels[t_local],
            })
            pending_append(spend)

            decision = _new(AlertDecision)
            _setattr(decision, "__dict__", {
                "time_of_day": times_l[i],
                "type_id": alert_type,
                "sse": sse,
                "scheme": scheme,
                "warned": warned,
                "audit_probability": audit_probability,
                "budget_before": budget,
                "budget_after": rem,
                "charged": charged,
                "ossp_utility": ossp_utility,
                "sse_utility": sse_utility,
                "game_value": game_value,
                "solve_seconds": 0.0,
                "signaling_applied": applied,
            })
            record(decision)
            out_append(decision)
            hits += 1

        est.sync_anchor(float(anchor_after[-1]))
        if pending:
            ledger.sync(rem, pending)
        if self._stale_floor is False and rem < floor and floor > 0.0:
            self._stale_floor = True
        if not self._stale_columns and region.truncated:
            if int(columns.max()) >= n_columns:
                self._stale_columns = True
        return out, hits, falls

    def _batched_ossp_utilities(
        self,
        type_arr: np.ndarray,
        thetas: np.ndarray,
        decisions: list[AlertDecision],
    ) -> np.ndarray:
        """Per-alert OSSP values, one vectorized pass per alert type.

        The batched closed form applies exactly when the per-alert pipeline
        itself used it: signaling applied, classic (non-robust) OSSP, and
        the Theorem 3 payoff condition. All other alerts keep their recorded
        per-decision value.
        """
        values = np.array([d.ossp_utility for d in decisions])
        config = self._game.config
        if (
            not config.signaling_enabled
            or config.robust_margin > 0
            or config.signaling_method != "closed_form"
        ):
            return values
        applied = np.array([d.signaling_applied for d in decisions], dtype=bool)
        for type_id in np.unique(type_arr):
            payoff = config.payoffs[int(type_id)]
            if not payoff.satisfies_theorem3_condition():
                continue
            mask = (type_arr == type_id) & applied
            if np.any(mask):
                values[mask] = batch_ossp_auditor_utility(thetas[mask], payoff)
        return values


def analytic_config(config: SAGConfig) -> SAGConfig:
    """A copy of ``config`` switched to the analytic solver backend."""
    from dataclasses import replace

    return replace(config, backend="analytic")
