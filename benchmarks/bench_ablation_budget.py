"""Benchmark A2 — value of signaling across audit budgets.

Design-study for Theorem 2: the OSSP's advantage over the plain SSE is
largest when the budget is far below the deterrence point and vanishes once
coverage alone deters the attacker. Uses the Figure 2 day-start state
(type 1, Table 1 mean).
"""

from __future__ import annotations

from repro.experiments.ablations import format_budget_sweep, run_budget_sweep

_BUDGETS = (5.0, 10.0, 20.0, 40.0, 80.0, 120.0, 160.0)


def test_bench_budget_sweep(benchmark):
    rows = benchmark(run_budget_sweep, budgets=_BUDGETS)

    print()
    print(format_budget_sweep(rows))

    assert [row.budget for row in rows] == list(_BUDGETS)
    # Coverage grows with budget.
    thetas = [row.theta for row in rows]
    assert thetas == sorted(thetas)
    # Theorem 2 at every budget.
    for row in rows:
        assert row.signaling_gain >= -1e-9
    # Below deterrence the gain is strictly positive; above, exactly zero.
    assert rows[0].signaling_gain > 10.0
    assert rows[-1].signaling_gain == 0.0
    # The gain eventually vanishes (crossover to deterrence).
    deterred = [row for row in rows if row.sse_utility == 0.0]
    assert deterred, "sweep should reach the deterrence regime"
