"""Benchmark A4 — budget-charging policy ablation.

Design-choice study: the paper updates the budget with the
*signal-conditional* audit probability after sampling each signal
(Section 2.2), which makes the realized budget path a mean-preserving
random walk with zero as an absorbing state. Charging the expected spend
``theta * V`` instead tracks the fluid budget path exactly. This ablation
quantifies how much late-day utility the sampling noise costs.
"""

from __future__ import annotations

from repro.experiments.ablations import run_charging_ablation

_SEED = 7
_DAYS = 56


def test_bench_charging_ablation(benchmark):
    result = benchmark.pedantic(
        run_charging_ablation,
        kwargs=dict(seed=_SEED, n_days=_DAYS, n_test_days=2),
        rounds=1,
        iterations=1,
    )

    print(
        "\nbudget charging (OSSP, single type):\n"
        f"  final budget            : conditional "
        f"{result.final_budget_conditional:7.3f} / expected "
        f"{result.final_budget_expected:7.3f}\n"
        f"  late-day mean E[utility]: conditional "
        f"{result.late_mean_utility_conditional:8.1f} / expected "
        f"{result.late_mean_utility_expected:8.1f}\n"
        f"  full-day mean E[utility]: conditional "
        f"{result.full_mean_utility_conditional:8.1f} / expected "
        f"{result.full_mean_utility_expected:8.1f}"
    )

    # Expected charging can never *end* with less budget than the clamped
    # conditional walk spent in expectation... empirically, the variance-free
    # path retains at least as much end-of-day budget.
    assert (
        result.final_budget_expected
        >= result.final_budget_conditional - 0.25
    )
    # Full-day means stay in the same regime — charging is a second-order
    # effect outside the late-day tail.
    gap = abs(
        result.full_mean_utility_conditional
        - result.full_mean_utility_expected
    )
    assert gap < 60.0
