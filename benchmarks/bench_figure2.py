"""Benchmark E3 — Figure 2: single-type per-alert utility series.

Reproduces: paper Figure 2 (a-d). Single alert type (Same Last Name),
budget 20, audit cost 1, 41-day rolling training windows, 4 test days.

Shape assertions (what the paper's figures show):

* OSSP achieves strictly higher auditor expected utility than both SSE
  baselines on every test day (on average, and pointwise over the first
  half of the day where budget paths still coincide);
* the offline-SSE series is exactly flat;
* the two SSE baselines sit close together (their lines nearly overlap in
  the paper's plots), far below the OSSP.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figure2 import format_figure2, run_figure2


def test_bench_figure2(benchmark, paper_store):
    result = benchmark.pedantic(
        run_figure2,
        kwargs=dict(store=paper_store, n_test_days=4),
        rounds=1,
        iterations=1,
    )

    print()
    print(format_figure2(result, n_points=12))

    assert len(result.test_days) == 4
    for test_day in result.test_days:
        day = result.day(test_day)
        ossp = day["OSSP"]
        online = day["online SSE"]
        offline = day["offline SSE"]

        # Headline: signaling wins, by a wide margin.
        assert ossp.mean_utility() > online.mean_utility() + 50.0
        assert ossp.mean_utility() > offline.mean_utility() + 50.0

        # Pointwise over the first half of the day.
        half = len(ossp.values) // 2
        assert np.all(ossp.values[:half] >= online.values[:half] - 1e-6)

        # Offline SSE is flat; the two SSE lines nearly overlap.
        assert np.ptp(offline.values) < 1e-9
        assert abs(online.mean_utility() - offline.mean_utility()) < 60.0

        # Utilities live in the paper's plotted band.
        for series in (ossp, online, offline):
            assert np.all(series.values <= 50.0)
            assert np.all(series.values >= -450.0)
