"""Benchmark — learning subsystem: FP convergence, regret decay, throughput.

Reproduces: the learning-subsystem acceptance targets. Three gates:

1. **Fictitious-play convergence** — on random zero-sum instances (the
   provable-convergence regime) the dynamics of
   :func:`repro.learning.fictitious_play.run_fictitious_play` must drive
   the normalized exploitability gap to ``FP_GAP_TOL`` (1e-3) within the
   iteration cap; the worst gap and per-instance iteration counts are
   recorded.
2. **No-regret decay** — a :class:`~repro.learning.attackers.NoRegretAttacker`
   driven through :func:`~repro.learning.loop.run_learning_loop` for
   >= 20 cycles must show monotonically decreasing average regret (within
   ``REGRET_NOISE`` per step) and strictly lower final than initial regret.
3. **Throughput** — the learning loop must sustain at least
   ``MIN_DECISIONS_PER_SECOND`` decisions/s end to end (engine replays
   plus per-cycle belief updates).

The run writes its measurements to ``BENCH_learning.json``, which CI
uploads as an artifact alongside the other BENCH files.

Usage::

    PYTHONPATH=src python benchmarks/bench_learning.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.engine.conformance import zero_sum_game
from repro.learning import NoRegretAttacker, run_fictitious_play, run_learning_loop
from repro.scenarios import ScenarioSpec

#: Normalized exploitability gap every zero-sum instance must reach.
FP_GAP_TOL = 1e-3

#: Iteration cap for the dynamics (matches conformance Part D).
FP_ITERATIONS = 4000

#: Allowed per-step increase in the average-regret curve (sampling noise
#: from signal lotteries and budget-path variation across replay cycles).
REGRET_NOISE = 0.02

#: End-to-end learning-loop throughput floor (decisions per second).
MIN_DECISIONS_PER_SECOND = 150.0

#: Cycles the no-regret attacker learns for (the gate requires >= 20).
REGRET_CYCLES = 24


def bench_fp_convergence(seed: int, n_instances: int) -> dict:
    """Gap and iteration count for each zero-sum instance."""
    rng = np.random.default_rng(seed)
    gaps, iterations = [], []
    for _ in range(n_instances):
        payoffs, _costs = zero_sum_game(rng)
        budget = float(rng.uniform(1.0, 50.0))
        coefficient = {t: float(rng.uniform(0.005, 0.5)) for t in sorted(payoffs)}
        result = run_fictitious_play(
            budget, coefficient, payoffs,
            iterations=FP_ITERATIONS, tol=FP_GAP_TOL,
        )
        gaps.append(result.gap)
        iterations.append(result.iterations)
    return {
        "instances": n_instances,
        "gap_tol": FP_GAP_TOL,
        "iteration_cap": FP_ITERATIONS,
        "max_gap": max(gaps),
        "mean_iterations": float(np.mean(iterations)),
        "max_iterations": max(iterations),
        "all_converged": max(gaps) <= FP_GAP_TOL,
    }


def bench_regret_curve(seed: int, cycles: int) -> dict:
    """The no-regret attacker's average-regret curve plus throughput."""
    spec = ScenarioSpec(
        name="bench-learning", seed=seed, n_days=4, training_window=3,
        attacker="no_regret", learning_cycles=cycles,
    )
    alerts, context, _split = spec.build_world()
    started = time.perf_counter()
    curve = run_learning_loop(
        NoRegretAttacker(learning_rate=spec.learning_rate),
        alerts, context, cycles=cycles,
    )
    wall = time.perf_counter() - started
    regret = list(curve.regret)
    violations = [
        (i, regret[i], regret[i + 1])
        for i in range(len(regret) - 1)
        if regret[i + 1] > regret[i] + REGRET_NOISE
    ]
    decisions = cycles * len(alerts)
    return {
        "cycles": cycles,
        "alerts_per_cycle": len(alerts),
        "regret_curve": regret,
        "regret_initial": regret[0],
        "regret_final": regret[-1],
        "monotone_within_noise": not violations,
        "violations": violations,
        "decisions": decisions,
        "wall_seconds": wall,
        "decisions_per_second": decisions / wall if wall > 0 else 0.0,
    }


def run_bench(seed: int = 7, quick: bool = False) -> dict:
    """All three measurement groups in one payload."""
    return {
        "fp": bench_fp_convergence(seed, n_instances=6 if quick else 20),
        "regret": bench_regret_curve(seed, cycles=REGRET_CYCLES),
        "floors": {
            "fp_gap_tol": FP_GAP_TOL,
            "regret_noise": REGRET_NOISE,
            "min_decisions_per_second": MIN_DECISIONS_PER_SECOND,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced instance count for CI smoke runs",
    )
    parser.add_argument(
        "--out", default="BENCH_learning.json", metavar="PATH",
        help="where to write the JSON measurements",
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    payload = run_bench(seed=args.seed, quick=args.quick)
    payload["quick"] = bool(args.quick)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)

    print(_format(payload))
    print(f"wrote {args.out}")

    failed = False
    fp = payload["fp"]
    if not fp["all_converged"]:
        print(
            f"FAIL: fictitious play left an exploitability gap of "
            f"{fp['max_gap']:.2e} (> {FP_GAP_TOL:g}) after "
            f"{fp['iteration_cap']} iterations",
            file=sys.stderr,
        )
        failed = True
    regret = payload["regret"]
    if not regret["monotone_within_noise"]:
        print(
            f"FAIL: average regret increased beyond the {REGRET_NOISE:g} "
            f"noise band at steps {regret['violations']}",
            file=sys.stderr,
        )
        failed = True
    if not regret["regret_final"] < regret["regret_initial"]:
        print(
            f"FAIL: final regret {regret['regret_final']:.4f} not below "
            f"initial {regret['regret_initial']:.4f}",
            file=sys.stderr,
        )
        failed = True
    if regret["decisions_per_second"] < MIN_DECISIONS_PER_SECOND:
        print(
            f"FAIL: learning loop at {regret['decisions_per_second']:.0f} "
            f"decisions/s, below the {MIN_DECISIONS_PER_SECOND:.0f}/s floor",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def _format(payload: dict) -> str:
    fp, regret = payload["fp"], payload["regret"]
    return "\n".join([
        f"Learning subsystem ({'quick' if payload['quick'] else 'full'})",
        f"  FP dynamics: {fp['instances']} zero-sum instances, "
        f"worst gap {fp['max_gap']:.2e} (tol {fp['gap_tol']:g}), "
        f"mean {fp['mean_iterations']:.0f} / max {fp['max_iterations']} "
        "iterations",
        f"  no-regret: {regret['cycles']} cycles x "
        f"{regret['alerts_per_cycle']} alerts, regret "
        f"{regret['regret_initial']:.4f} -> {regret['regret_final']:.4f} "
        f"(monotone within noise: {regret['monotone_within_noise']})",
        f"  throughput: {regret['decisions_per_second']:.0f} decisions/s "
        f"(floor {MIN_DECISIONS_PER_SECOND:.0f}/s)",
    ])


if __name__ == "__main__":
    sys.exit(main())
