"""Benchmark — serving-façade and wire overhead over the raw batch engine.

Reproduces: the serving-API acceptance target — routing an alert stream
through :class:`repro.api.v1.AuditService` (session routing, typed
payload construction, stats accounting) must cost at most
``MAX_OVERHEAD`` extra wall clock relative to driving the raw
:class:`~repro.engine.stream.BatchAuditEngine` on the identical stream.
Both sides replay the same synthetic workload with the same seeds, so
they do the same solver work; the measured difference is the façade.

A third section measures the full wire path: the identical stream
submitted by :class:`~repro.api.client.ReproClient` over an HTTP
loopback server (:func:`repro.api.http.serve_http`) — ndjson encode,
socket round-trip, server decode, hot path, and the streamed ndjson
response. That number is informational (no ceiling — it includes real
serialization work), so façade-vs-wire overhead lands side by side in
``BENCH_service.json``.

The run writes events/sec for all paths, the overhead ratios, and a
multi-tenant throughput figure to ``BENCH_service.json``, which CI
uploads as an artifact alongside ``BENCH_engine.json`` and
``BENCH_suite.json``. The overhead ceiling is enforced on the best of
``REPEATS`` paired runs (wall-clock noise cancels across repeats; the
solver work is deterministic).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.api.v1 import AlertEvent, AuditService, SessionConfig
from repro.core.game import SAGConfig
from repro.engine.cache import SSESolutionCache
from repro.engine.stream import BatchAuditEngine, analytic_config
from repro.experiments.runtime import synthetic_stream_workload
from repro.stats.estimator import FutureAlertEstimator, RollbackEstimator

#: Acceptance ceiling: façade wall clock <= (1 + MAX_OVERHEAD) * engine's.
MAX_OVERHEAD = 0.10

#: Paired measurement repeats; the overhead check uses the best of each.
REPEATS = 3

#: Acceptance floor for the sharded tier: aggregate multi-tenant
#: throughput at CLUSTER_WORKERS workers vs 1 worker through the same
#: front door. Recorded always; enforced only where the hardware can
#: physically show it (>= CLUSTER_WORKERS CPUs — the bench_suite
#: precedent: record everywhere, gate where it means something).
MIN_CLUSTER_SCALING = 2.5

#: Worker count of the scaled cluster measurement.
CLUSTER_WORKERS = 4


def _measure_engine(payoffs, costs, history, types, times, seed) -> float:
    """Raw-engine seconds for one replay of the stream."""
    engine = BatchAuditEngine(
        analytic_config(
            SAGConfig(payoffs=payoffs, costs=costs, budget=50.0)
        ),
        RollbackEstimator(FutureAlertEstimator(history)),
        rng=np.random.default_rng(seed),
        cache=SSESolutionCache(),
    )
    started = time.perf_counter()
    engine.process_stream(types, times)
    return time.perf_counter() - started


def _measure_service(
    payoffs, costs, history, events, seed, policy_table: bool = False
) -> float:
    """Façade seconds for the identical stream (one tenant, hot path).

    ``policy_table=True`` opens the session in compiled-table mode; the
    compile happens at ``open_session`` (amortized across cycles in a
    real deployment) and is deliberately outside the timed window — the
    payload reports it separately via the service's ``compile_seconds``.
    """
    service = AuditService()
    service.open_session(
        SessionConfig(
            tenant="bench",
            budget=50.0,
            payoffs=payoffs,
            costs=costs,
            backend="analytic",
            seed=seed,
            policy_table=policy_table,
        ),
        history,
    )
    started = time.perf_counter()
    service.submit(events)
    return time.perf_counter() - started


def _measure_http(payoffs, costs, history, events, seed) -> dict:
    """Wire seconds for the identical stream over an HTTP loopback.

    Full path: client-side ndjson encode → POST → server decode → the
    same ``submit`` hot path → streamed ndjson decisions → client decode.
    """
    from repro.api import ReproClient, serve_http
    from repro.api.v1 import AuditService

    with serve_http(AuditService()).start_background() as server:
        client = ReproClient.connect(server.url)
        client.open_session(
            SessionConfig(
                tenant="bench",
                budget=50.0,
                payoffs=payoffs,
                costs=costs,
                backend="analytic",
                seed=seed,
            ),
            history,
        )
        started = time.perf_counter()
        decisions = client.submit(events)
        elapsed = time.perf_counter() - started
        assert len(decisions) == len(events)
    return {"seconds": elapsed, "events_per_second": len(events) / elapsed}


def _measure_multi_tenant(
    payoffs, costs, history, events, seed, n_tenants: int,
    policy_table: bool = False,
) -> dict:
    """Round-robin multi-tenant submit: warm-up pass, then best of repeats.

    The stream splits round-robin over ``n_tenants`` sessions and lands
    in ONE ``submit`` call, so the figure exercises the cross-tenant
    grouping (every tenant's events form a single engine batch however
    interleaved they arrive) and the stacked closed-form OSSP pass.
    Reports the aggregate events/s (whole submission over wall clock)
    *and* each tenant's engine-side events/s, so a per-tenant collapse
    can no longer hide inside a healthy-looking aggregate.

    A full throwaway pass runs first: process-level one-time costs
    (allocator growth, NumPy/SciPy internals paging in) used to land
    entirely on whichever tenant went first, showing up as a phantom 4x
    per-tenant imbalance. Then ``REPEATS`` measured passes run on fresh
    services and the fastest pass is reported — per-tenant rates now
    reflect the workload, not interpreter warm-up. Table compiles happen
    at ``open_session``, outside the timed window; ``compile_seconds``
    reports them.
    """
    passes = [
        _one_multi_tenant_pass(
            payoffs, costs, history, events, seed, n_tenants, policy_table
        )
        for _ in range(REPEATS + 1)
    ]
    best = min(passes[1:], key=lambda result: result["seconds"])
    best["repeats"] = REPEATS
    best["warmed_up"] = True
    return best


def _one_multi_tenant_pass(
    payoffs, costs, history, events, seed, n_tenants: int,
    policy_table: bool = False,
) -> dict:
    service = AuditService()
    tenants = [f"bench-{i}" for i in range(n_tenants)]
    for index, tenant in enumerate(tenants):
        service.open_session(
            SessionConfig(
                tenant=tenant,
                budget=50.0,
                payoffs=payoffs,
                costs=costs,
                backend="analytic",
                seed=seed + index,
                policy_table=policy_table,
            ),
            history,
        )
    routed = [
        AlertEvent(
            tenant=tenants[index % n_tenants],
            type_id=event.type_id,
            time_of_day=event.time_of_day,
        )
        for index, event in enumerate(events)
    ]
    started = time.perf_counter()
    service.submit(routed)
    elapsed = time.perf_counter() - started
    per_tenant = {}
    for tenant in tenants:
        stats = service.session(tenant).report()
        per_tenant[tenant] = (
            stats.events / stats.wall_seconds if stats.wall_seconds > 0 else 0.0
        )
    aggregate = len(routed) / elapsed
    return {
        "tenants": n_tenants,
        "policy_table": policy_table,
        "seconds": elapsed,
        "events_per_second": aggregate,
        "aggregate_events_per_second": aggregate,
        "per_tenant_events_per_second": per_tenant,
        "compile_seconds": service.stats().compile_seconds,
    }


def _measure_cluster_scaling(
    payoffs, costs, history, events, seed, n_workers: int = CLUSTER_WORKERS,
) -> dict:
    """Aggregate multi-tenant throughput: N workers vs 1, same front door.

    One tenant is pinned to each shard of the N-worker ring (names probed
    deterministically against the hash placement), the identical
    round-robin stream drives both cluster sizes through the router's
    ``submit`` fan-out, and each size reports the best of ``REPEATS``
    passes after a warm-up pass (``close_cycle`` resets the day between
    passes). Worker boot and session opens sit outside every timed
    window. Cache mode, not table mode: the scaling story is process
    parallelism of real solver work.
    """
    from repro.api import ReproClient, serve_cluster
    from repro.api.hashring import HashRing

    worker_ids = [f"shard-{index}" for index in range(n_workers)]
    ring = HashRing(worker_ids)
    tenants: list[str] = []
    covered: set[str] = set()
    index = 0
    while len(tenants) < n_workers:
        name = f"bench-c{index}"
        owner = ring.owner(name)
        if owner not in covered:
            covered.add(owner)
            tenants.append(name)
        index += 1
    routed = [
        AlertEvent(
            tenant=tenants[position % len(tenants)],
            type_id=event.type_id,
            time_of_day=event.time_of_day,
        )
        for position, event in enumerate(events)
    ]

    def _drive(workers: list[str]) -> float:
        with serve_cluster(workers=workers).start_background() as cluster:
            client = ReproClient.connect(cluster.url)
            for offset, tenant in enumerate(tenants):
                client.open_session(
                    SessionConfig(
                        tenant=tenant,
                        budget=50.0,
                        payoffs=payoffs,
                        costs=costs,
                        backend="analytic",
                        seed=seed + offset,
                    ),
                    history,
                )
            best = float("inf")
            for attempt in range(REPEATS + 1):
                started = time.perf_counter()
                decisions = client.submit(routed)
                elapsed = time.perf_counter() - started
                assert len(decisions) == len(routed)
                for tenant in tenants:
                    client.close_cycle(tenant)
                if attempt > 0:  # the first pass is warm-up
                    best = min(best, elapsed)
            return len(routed) / best

    single_rate = _drive(worker_ids[:1])
    scaled_rate = _drive(worker_ids)
    cpu_count = os.cpu_count() or 1
    return {
        "workers": n_workers,
        "tenants": tenants,
        "events": len(routed),
        "repeats": REPEATS,
        "events_per_second_1_worker": single_rate,
        f"events_per_second_{n_workers}_workers": scaled_rate,
        "scaling_ratio": scaled_rate / single_rate,
        "min_scaling_ratio": MIN_CLUSTER_SCALING,
        "cpu_count": cpu_count,
        "enforced": cpu_count >= n_workers,
    }


def run_bench(seed: int = 7, n_alerts: int = 4000, n_tenants: int = 4) -> dict:
    """Paired engine-vs-service measurements on one synthetic stream."""
    payoffs, costs, history, types, times = synthetic_stream_workload(
        n_types=5, n_alerts=n_alerts, seed=seed
    )
    events = [
        AlertEvent(tenant="bench", type_id=int(t), time_of_day=float(s))
        for t, s in zip(types, times)
    ]

    engine_seconds: list[float] = []
    service_seconds: list[float] = []
    table_seconds: list[float] = []
    for _ in range(REPEATS):
        engine_seconds.append(
            _measure_engine(payoffs, costs, history, types, times, seed)
        )
        service_seconds.append(
            _measure_service(payoffs, costs, history, events, seed)
        )
        table_seconds.append(
            _measure_service(
                payoffs, costs, history, events, seed, policy_table=True
            )
        )
    best_engine = min(engine_seconds)
    best_service = min(service_seconds)
    best_table = min(table_seconds)
    single_rate = n_alerts / best_service
    single_table_rate = n_alerts / best_table
    # The headline multi-tenant figure runs the compiled-table serving
    # path (this is the steady-state hot configuration); the cache-path
    # twin is kept alongside so the table's contribution stays visible.
    multi_table = _measure_multi_tenant(
        payoffs, costs, history, events, seed, n_tenants, policy_table=True
    )
    multi_table["scaling_ratio"] = (
        multi_table["aggregate_events_per_second"] / single_table_rate
    )
    multi_cache = _measure_multi_tenant(
        payoffs, costs, history, events, seed, n_tenants
    )
    multi_cache["scaling_ratio"] = (
        multi_cache["aggregate_events_per_second"] / single_rate
    )
    http = _measure_http(payoffs, costs, history, events, seed)
    http["overhead_vs_engine"] = http["seconds"] / best_engine - 1.0
    cluster = _measure_cluster_scaling(
        payoffs, costs, history, events, seed
    )

    return {
        "n_alerts": n_alerts,
        "n_types": 5,
        "repeats": REPEATS,
        "engine_seconds": engine_seconds,
        "service_seconds": service_seconds,
        "service_table_seconds": table_seconds,
        "engine_events_per_second": n_alerts / best_engine,
        "service_events_per_second": single_rate,
        "service_table_events_per_second": single_table_rate,
        "overhead": best_service / best_engine - 1.0,
        "max_overhead": MAX_OVERHEAD,
        "multi_tenant": multi_table,
        "multi_tenant_cache": multi_cache,
        "http_loopback": http,
        "cluster_scaling": cluster,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced stream length for CI smoke runs",
    )
    parser.add_argument(
        "--out", default="BENCH_service.json", metavar="PATH",
        help="where to write the JSON measurements",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--alerts", type=int, default=None,
        help="stream length (default 4000, quick 1000)",
    )
    args = parser.parse_args(argv)

    n_alerts = args.alerts if args.alerts is not None else (
        1000 if args.quick else 4000
    )
    payload = run_bench(seed=args.seed, n_alerts=n_alerts)
    payload["quick"] = bool(args.quick)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)

    print(_format(payload))
    print(f"wrote {args.out}")
    if payload["overhead"] > MAX_OVERHEAD:
        print(
            f"FAIL: façade overhead {payload['overhead']:.1%} exceeds the "
            f"{MAX_OVERHEAD:.0%} acceptance ceiling",
            file=sys.stderr,
        )
        return 1
    cluster = payload["cluster_scaling"]
    if cluster["enforced"] and cluster["scaling_ratio"] < MIN_CLUSTER_SCALING:
        print(
            f"FAIL: cluster scaling {cluster['scaling_ratio']:.2f}x at "
            f"{cluster['workers']} workers is below the "
            f"{MIN_CLUSTER_SCALING:.1f}x acceptance floor",
            file=sys.stderr,
        )
        return 1
    return 0


def _format(payload: dict) -> str:
    multi = payload["multi_tenant"]
    cache = payload["multi_tenant_cache"]
    http = payload["http_loopback"]
    lines = [
        f"Serving façade vs raw engine ({payload['n_alerts']} alerts, "
        f"{payload['n_types']} types, best of {payload['repeats']})",
        f"  raw BatchAuditEngine : "
        f"{payload['engine_events_per_second']:9.0f} events/s",
        f"  AuditService.submit  : "
        f"{payload['service_events_per_second']:9.0f} events/s",
        f"  submit (policy table): "
        f"{payload['service_table_events_per_second']:9.0f} events/s",
        f"  façade overhead      : {payload['overhead']:9.1%} "
        f"(ceiling {payload['max_overhead']:.0%})",
    ]
    for label, section in (
        (f"{multi['tenants']}-tenant table submit", multi),
        (f"{cache['tenants']}-tenant cache submit", cache),
    ):
        rates = section["per_tenant_events_per_second"]
        lines.append(
            f"  {label:<21}: "
            f"{section['aggregate_events_per_second']:9.0f} events/s "
            f"aggregate (scaling {section['scaling_ratio']:.2f}x of "
            f"1-tenant)"
        )
        lines.append(
            "     per tenant        : "
            + ", ".join(f"{rate:.0f}" for rate in rates.values())
            + " events/s"
        )
    lines.append(
        f"  HTTP loopback submit : "
        f"{http['events_per_second']:9.0f} events/s "
        f"(wire overhead {http['overhead_vs_engine']:.1%}, informational)"
    )
    cluster = payload["cluster_scaling"]
    gate = (
        f"floor {cluster['min_scaling_ratio']:.1f}x enforced"
        if cluster["enforced"]
        else f"floor {cluster['min_scaling_ratio']:.1f}x recorded only "
             f"({cluster['cpu_count']} CPUs < {cluster['workers']} workers)"
    )
    scaled = cluster[f"events_per_second_{cluster['workers']}_workers"]
    lines.append(
        f"  cluster {cluster['workers']}w vs 1w    : "
        f"{scaled:9.0f} vs {cluster['events_per_second_1_worker']:.0f} "
        f"events/s (scaling {cluster['scaling_ratio']:.2f}x, {gate})"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    sys.exit(main())
