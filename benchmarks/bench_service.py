"""Benchmark — serving-façade and wire overhead over the raw batch engine.

Reproduces: the serving-API acceptance target — routing an alert stream
through :class:`repro.api.v1.AuditService` (session routing, typed
payload construction, stats accounting) must cost at most
``MAX_OVERHEAD`` extra wall clock relative to driving the raw
:class:`~repro.engine.stream.BatchAuditEngine` on the identical stream.
Both sides replay the same synthetic workload with the same seeds, so
they do the same solver work; the measured difference is the façade.

A third section measures the full wire path: the identical stream
submitted by :class:`~repro.api.client.ReproClient` over an HTTP
loopback server (:func:`repro.api.http.serve_http`) — ndjson encode,
socket round-trip, server decode, hot path, and the streamed ndjson
response. That number is informational (no ceiling — it includes real
serialization work), so façade-vs-wire overhead lands side by side in
``BENCH_service.json``.

The run writes events/sec for all paths, the overhead ratios, and a
multi-tenant throughput figure to ``BENCH_service.json``, which CI
uploads as an artifact alongside ``BENCH_engine.json`` and
``BENCH_suite.json``. The overhead ceiling is enforced on the best of
``REPEATS`` paired runs (wall-clock noise cancels across repeats; the
solver work is deterministic).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.api.v1 import AlertEvent, AuditService, SessionConfig
from repro.core.game import SAGConfig
from repro.engine.cache import SSESolutionCache
from repro.engine.stream import BatchAuditEngine, analytic_config
from repro.experiments.runtime import synthetic_stream_workload
from repro.stats.estimator import FutureAlertEstimator, RollbackEstimator

#: Acceptance ceiling: façade wall clock <= (1 + MAX_OVERHEAD) * engine's.
MAX_OVERHEAD = 0.10

#: Paired measurement repeats; the overhead check uses the best of each.
REPEATS = 3


def _measure_engine(payoffs, costs, history, types, times, seed) -> float:
    """Raw-engine seconds for one replay of the stream."""
    engine = BatchAuditEngine(
        analytic_config(
            SAGConfig(payoffs=payoffs, costs=costs, budget=50.0)
        ),
        RollbackEstimator(FutureAlertEstimator(history)),
        rng=np.random.default_rng(seed),
        cache=SSESolutionCache(),
    )
    started = time.perf_counter()
    engine.process_stream(types, times)
    return time.perf_counter() - started


def _measure_service(
    payoffs, costs, history, events, seed, policy_table: bool = False
) -> float:
    """Façade seconds for the identical stream (one tenant, hot path).

    ``policy_table=True`` opens the session in compiled-table mode; the
    compile happens at ``open_session`` (amortized across cycles in a
    real deployment) and is deliberately outside the timed window — the
    payload reports it separately via the service's ``compile_seconds``.
    """
    service = AuditService()
    service.open_session(
        SessionConfig(
            tenant="bench",
            budget=50.0,
            payoffs=payoffs,
            costs=costs,
            backend="analytic",
            seed=seed,
            policy_table=policy_table,
        ),
        history,
    )
    started = time.perf_counter()
    service.submit(events)
    return time.perf_counter() - started


def _measure_http(payoffs, costs, history, events, seed) -> dict:
    """Wire seconds for the identical stream over an HTTP loopback.

    Full path: client-side ndjson encode → POST → server decode → the
    same ``submit`` hot path → streamed ndjson decisions → client decode.
    """
    from repro.api import ReproClient, serve_http
    from repro.api.v1 import AuditService

    with serve_http(AuditService()).start_background() as server:
        client = ReproClient.connect(server.url)
        client.open_session(
            SessionConfig(
                tenant="bench",
                budget=50.0,
                payoffs=payoffs,
                costs=costs,
                backend="analytic",
                seed=seed,
            ),
            history,
        )
        started = time.perf_counter()
        decisions = client.submit(events)
        elapsed = time.perf_counter() - started
        assert len(decisions) == len(events)
    return {"seconds": elapsed, "events_per_second": len(events) / elapsed}


def _measure_multi_tenant(
    payoffs, costs, history, events, seed, n_tenants: int,
    policy_table: bool = False,
) -> dict:
    """One round-robin multi-tenant submit, measured per tenant and whole.

    The stream splits round-robin over ``n_tenants`` sessions and lands
    in ONE ``submit`` call, so the figure exercises the cross-tenant
    grouping (every tenant's events form a single engine batch however
    interleaved they arrive) and the stacked closed-form OSSP pass.
    Reports the aggregate events/s (whole submission over wall clock)
    *and* each tenant's engine-side events/s, so a per-tenant collapse
    can no longer hide inside a healthy-looking aggregate. Table
    compiles happen at ``open_session``, outside the timed window;
    ``compile_seconds`` reports them.
    """
    service = AuditService()
    tenants = [f"bench-{i}" for i in range(n_tenants)]
    for index, tenant in enumerate(tenants):
        service.open_session(
            SessionConfig(
                tenant=tenant,
                budget=50.0,
                payoffs=payoffs,
                costs=costs,
                backend="analytic",
                seed=seed + index,
                policy_table=policy_table,
            ),
            history,
        )
    routed = [
        AlertEvent(
            tenant=tenants[index % n_tenants],
            type_id=event.type_id,
            time_of_day=event.time_of_day,
        )
        for index, event in enumerate(events)
    ]
    started = time.perf_counter()
    service.submit(routed)
    elapsed = time.perf_counter() - started
    per_tenant = {}
    for tenant in tenants:
        stats = service.session(tenant).report()
        per_tenant[tenant] = (
            stats.events / stats.wall_seconds if stats.wall_seconds > 0 else 0.0
        )
    aggregate = len(routed) / elapsed
    return {
        "tenants": n_tenants,
        "policy_table": policy_table,
        "seconds": elapsed,
        "events_per_second": aggregate,
        "aggregate_events_per_second": aggregate,
        "per_tenant_events_per_second": per_tenant,
        "compile_seconds": service.stats().compile_seconds,
    }


def run_bench(seed: int = 7, n_alerts: int = 4000, n_tenants: int = 4) -> dict:
    """Paired engine-vs-service measurements on one synthetic stream."""
    payoffs, costs, history, types, times = synthetic_stream_workload(
        n_types=5, n_alerts=n_alerts, seed=seed
    )
    events = [
        AlertEvent(tenant="bench", type_id=int(t), time_of_day=float(s))
        for t, s in zip(types, times)
    ]

    engine_seconds: list[float] = []
    service_seconds: list[float] = []
    table_seconds: list[float] = []
    for _ in range(REPEATS):
        engine_seconds.append(
            _measure_engine(payoffs, costs, history, types, times, seed)
        )
        service_seconds.append(
            _measure_service(payoffs, costs, history, events, seed)
        )
        table_seconds.append(
            _measure_service(
                payoffs, costs, history, events, seed, policy_table=True
            )
        )
    best_engine = min(engine_seconds)
    best_service = min(service_seconds)
    best_table = min(table_seconds)
    single_rate = n_alerts / best_service
    single_table_rate = n_alerts / best_table
    # The headline multi-tenant figure runs the compiled-table serving
    # path (this is the steady-state hot configuration); the cache-path
    # twin is kept alongside so the table's contribution stays visible.
    multi_table = _measure_multi_tenant(
        payoffs, costs, history, events, seed, n_tenants, policy_table=True
    )
    multi_table["scaling_ratio"] = (
        multi_table["aggregate_events_per_second"] / single_table_rate
    )
    multi_cache = _measure_multi_tenant(
        payoffs, costs, history, events, seed, n_tenants
    )
    multi_cache["scaling_ratio"] = (
        multi_cache["aggregate_events_per_second"] / single_rate
    )
    http = _measure_http(payoffs, costs, history, events, seed)
    http["overhead_vs_engine"] = http["seconds"] / best_engine - 1.0

    return {
        "n_alerts": n_alerts,
        "n_types": 5,
        "repeats": REPEATS,
        "engine_seconds": engine_seconds,
        "service_seconds": service_seconds,
        "service_table_seconds": table_seconds,
        "engine_events_per_second": n_alerts / best_engine,
        "service_events_per_second": single_rate,
        "service_table_events_per_second": single_table_rate,
        "overhead": best_service / best_engine - 1.0,
        "max_overhead": MAX_OVERHEAD,
        "multi_tenant": multi_table,
        "multi_tenant_cache": multi_cache,
        "http_loopback": http,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced stream length for CI smoke runs",
    )
    parser.add_argument(
        "--out", default="BENCH_service.json", metavar="PATH",
        help="where to write the JSON measurements",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--alerts", type=int, default=None,
        help="stream length (default 4000, quick 1000)",
    )
    args = parser.parse_args(argv)

    n_alerts = args.alerts if args.alerts is not None else (
        1000 if args.quick else 4000
    )
    payload = run_bench(seed=args.seed, n_alerts=n_alerts)
    payload["quick"] = bool(args.quick)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)

    print(_format(payload))
    print(f"wrote {args.out}")
    if payload["overhead"] > MAX_OVERHEAD:
        print(
            f"FAIL: façade overhead {payload['overhead']:.1%} exceeds the "
            f"{MAX_OVERHEAD:.0%} acceptance ceiling",
            file=sys.stderr,
        )
        return 1
    return 0


def _format(payload: dict) -> str:
    multi = payload["multi_tenant"]
    cache = payload["multi_tenant_cache"]
    http = payload["http_loopback"]
    lines = [
        f"Serving façade vs raw engine ({payload['n_alerts']} alerts, "
        f"{payload['n_types']} types, best of {payload['repeats']})",
        f"  raw BatchAuditEngine : "
        f"{payload['engine_events_per_second']:9.0f} events/s",
        f"  AuditService.submit  : "
        f"{payload['service_events_per_second']:9.0f} events/s",
        f"  submit (policy table): "
        f"{payload['service_table_events_per_second']:9.0f} events/s",
        f"  façade overhead      : {payload['overhead']:9.1%} "
        f"(ceiling {payload['max_overhead']:.0%})",
    ]
    for label, section in (
        (f"{multi['tenants']}-tenant table submit", multi),
        (f"{cache['tenants']}-tenant cache submit", cache),
    ):
        rates = section["per_tenant_events_per_second"]
        lines.append(
            f"  {label:<21}: "
            f"{section['aggregate_events_per_second']:9.0f} events/s "
            f"aggregate (scaling {section['scaling_ratio']:.2f}x of "
            f"1-tenant)"
        )
        lines.append(
            "     per tenant        : "
            + ", ".join(f"{rate:.0f}" for rate in rates.values())
            + " events/s"
        )
    lines.append(
        f"  HTTP loopback submit : "
        f"{http['events_per_second']:9.0f} events/s "
        f"(wire overhead {http['overhead_vs_engine']:.1%}, informational)"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    sys.exit(main())
