"""Benchmark E4 — Figure 3: seven-type per-alert utility series.

Reproduces: paper Figure 3 (a-d). All seven Table 1 alert types, budget 50,
audit cost 1, SAG applied to best-response-type alerts (paper Section 5.B),
41-day rolling training windows, 4 test days.

Shape assertions: same ordering as Figure 2 — OSSP above online SSE above
(or near) the flat offline SSE — in the same utility band.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figure3 import format_figure3, run_figure3


def test_bench_figure3(benchmark, paper_store):
    result = benchmark.pedantic(
        run_figure3,
        kwargs=dict(store=paper_store, n_test_days=4),
        rounds=1,
        iterations=1,
    )

    print()
    print(format_figure3(result, n_points=12))

    assert len(result.test_days) == 4
    for test_day in result.test_days:
        day = result.day(test_day)
        ossp = day["OSSP"]
        online = day["online SSE"]
        offline = day["offline SSE"]

        # Headline ordering: the SAG helps the auditor lose less.
        assert ossp.mean_utility() > online.mean_utility() + 50.0
        assert ossp.mean_utility() > offline.mean_utility() + 50.0

        # Pointwise over the first half of the day.
        half = len(ossp.values) // 2
        assert np.all(ossp.values[:half] >= online.values[:half] - 1e-6)

        # Offline SSE is flat.
        assert np.ptp(offline.values) < 1e-9

        # Paper's plotted band. The last alerts of a day can dip further
        # when the sampled (conditional-charging) budget path runs dry and
        # the best-response type carries a large uncovered loss (type 7's
        # U_du = -2000), so the hard floor is loose; the bucketed means
        # stay inside the paper's plotted range.
        for series in (ossp, online, offline):
            assert np.all(series.values <= 50.0)
            assert np.all(series.values >= -2000.0)
            assert series.mean_utility() >= -500.0
