"""Benchmark — foreign-schema ingestion throughput through SchemaMapping.

Reproduces: the ingest-layer acceptance target — streaming a
foreign-schema hospital dump through its declarative
:class:`~repro.ingest.mapping.SchemaMapping` (per-column transforms,
entity resolution, rule-engine alert typing, alert-log construction)
must sustain at least ``MIN_ROWS_PER_SECOND`` foreign access rows per
second end to end. The dump is generated in memory by
:mod:`repro.ingest.generate`, so the measurement covers the mapping
pipeline, not disk I/O.

Two further sections are informational (no floor): the generator's own
row rate, and the journal round-trip — writing the ingested alert log
with :meth:`MappedSource.journal` and reloading it through
:class:`~repro.ingest.source.LogReplaySource`, the replay half of the
source contract.

The run writes all rates to ``BENCH_ingest.json``, which CI uploads as
an artifact alongside the other ``BENCH_*.json`` files. The floor is
enforced on the best of ``REPEATS`` runs over the same in-memory tables
(wall-clock noise cancels; the pipeline is deterministic).

Usage::

    PYTHONPATH=src python benchmarks/bench_ingest.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.ingest import (
    GeneratorConfig,
    LogReplaySource,
    MappedSource,
    foreign_mapping,
    generate_tables,
    small_population,
)

#: Acceptance floor: mapped foreign access rows per second, end to end
#: (transforms + entity resolution + rule-engine typing + store build).
MIN_ROWS_PER_SECOND = 50_000.0

#: Measurement repeats; the floor check uses the best (a warm-up pass
#: runs first so one-time interpreter costs stay out of every repeat).
REPEATS = 3


def _measure_ingest(tables) -> tuple[float, "MappedSource"]:
    """Seconds for one full mapping pass over fresh (unmemoized) state."""
    source = MappedSource(foreign_mapping(), tables)
    started = time.perf_counter()
    source.build_store()
    return time.perf_counter() - started, source


def _measure_journal(source: MappedSource) -> dict:
    """Journal the ingested log and reload it — the replay round trip."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "alerts.jsonl"
        started = time.perf_counter()
        source.journal(path)
        write_seconds = time.perf_counter() - started
        replay = LogReplaySource(str(path))
        started = time.perf_counter()
        store = replay.build_store()
        read_seconds = time.perf_counter() - started
        n_alerts = sum(replay.type_counts().values())
        assert store.days == source.build_store().days
    return {
        "alerts": n_alerts,
        "write_seconds": write_seconds,
        "read_seconds": read_seconds,
        "alerts_per_second_read": (
            n_alerts / read_seconds if read_seconds > 0 else 0.0
        ),
    }


def run_bench(
    seed: int = 7, n_days: int = 5, daily_accesses: int = 20_000
) -> dict:
    """Generate one in-memory dump and measure the mapping pipeline."""
    config = GeneratorConfig(
        seed=seed,
        n_days=n_days,
        daily_accesses=daily_accesses,
        daily_suspicious=120,
        population=small_population(),
    )
    started = time.perf_counter()
    tables = generate_tables(config)
    generate_seconds = time.perf_counter() - started
    n_rows = len(tables["access_log"])

    ingest_seconds: list[float] = []
    source = None
    for _ in range(REPEATS + 1):  # the first pass is warm-up
        seconds, source = _measure_ingest(tables)
        ingest_seconds.append(seconds)
    measured = ingest_seconds[1:]
    best = min(measured)
    counts = source.type_counts()

    return {
        "seed": seed,
        "n_days": n_days,
        "access_rows": n_rows,
        "repeats": REPEATS,
        "generate_seconds": generate_seconds,
        "generate_rows_per_second": n_rows / generate_seconds,
        "ingest_seconds": measured,
        "rows_per_second": n_rows / best,
        "min_rows_per_second": MIN_ROWS_PER_SECOND,
        "alerts": sum(counts.values()),
        "alert_types": len(counts),
        "journal": _measure_journal(source),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced dump size for CI smoke runs",
    )
    parser.add_argument(
        "--out", default="BENCH_ingest.json", metavar="PATH",
        help="where to write the JSON measurements",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--rows", type=int, default=None,
        help="daily foreign access rows (default 20000, quick 4000)",
    )
    args = parser.parse_args(argv)

    daily = args.rows if args.rows is not None else (
        4000 if args.quick else 20_000
    )
    n_days = 4 if args.quick else 5
    payload = run_bench(seed=args.seed, n_days=n_days, daily_accesses=daily)
    payload["quick"] = bool(args.quick)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)

    print(_format(payload))
    print(f"wrote {args.out}")
    if payload["rows_per_second"] < MIN_ROWS_PER_SECOND:
        print(
            f"FAIL: ingest throughput {payload['rows_per_second']:.0f} "
            f"rows/s is below the {MIN_ROWS_PER_SECOND:.0f} rows/s "
            "acceptance floor",
            file=sys.stderr,
        )
        return 1
    return 0


def _format(payload: dict) -> str:
    journal = payload["journal"]
    return "\n".join([
        f"Foreign-schema ingestion ({payload['access_rows']} access rows, "
        f"{payload['n_days']} days, best of {payload['repeats']})",
        f"  SchemaMapping pipeline: {payload['rows_per_second']:9.0f} rows/s "
        f"(floor {payload['min_rows_per_second']:.0f})",
        f"  dump generator        : "
        f"{payload['generate_rows_per_second']:9.0f} rows/s (informational)",
        f"  typed alerts          : {payload['alerts']:9d} across "
        f"{payload['alert_types']} types",
        f"  journal replay read   : "
        f"{journal['alerts_per_second_read']:9.0f} alerts/s "
        f"({journal['alerts']} alerts, informational)",
    ])


if __name__ == "__main__":
    sys.exit(main())
