"""Benchmark A3 — LP backend comparison on real LP (2) instances.

Design-choice ablation: the online SSE can be solved by SciPy's HiGHS or by
the dependency-free pure-Python simplex. Both must agree on the optimum;
this benchmark quantifies the speed gap on the paper-shaped 7-type LP (2)
state.
"""

from __future__ import annotations

import pytest

from repro.core.sse import GameState, solve_online_sse
from repro.experiments.config import (
    MULTI_TYPE_BUDGET,
    TABLE1_STATISTICS,
    TABLE2_PAYOFFS,
    paper_costs,
)

_STATE = GameState(
    budget=MULTI_TYPE_BUDGET,
    lambdas={t: mean for t, (mean, _) in TABLE1_STATISTICS.items()},
)
_COSTS = paper_costs()


@pytest.mark.parametrize("backend", ["scipy", "simplex"])
def test_bench_lp2_backend(benchmark, backend):
    solution = benchmark(
        solve_online_sse, _STATE, TABLE2_PAYOFFS, _COSTS, backend=backend
    )
    reference = solve_online_sse(_STATE, TABLE2_PAYOFFS, _COSTS, backend="scipy")
    assert solution.auditor_utility == pytest.approx(
        reference.auditor_utility, abs=1e-5
    )
    assert solution.best_response == reference.best_response
