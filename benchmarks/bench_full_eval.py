"""Benchmark E6 — the full 15-group evaluation summary.

Reproduces: the paper's claim that the four displayed test days generalize
("From the dataset, we construct 15 groups ... all of which yield similar
trends"). Runs the single-type setting over every rolling group of the
56-day dataset and the seven-type setting over a subset, asserting the
Figure 2/3 ordering holds in aggregate.
"""

from __future__ import annotations

from repro.experiments.full_eval import (
    format_full_evaluation,
    run_full_evaluation,
)


def test_bench_full_eval_single(benchmark, paper_store):
    result = benchmark.pedantic(
        run_full_evaluation,
        kwargs=dict(store=paper_store, setting="single"),
        rounds=1,
        iterations=1,
    )

    print()
    print(format_full_evaluation(result))

    assert result.n_groups == 15  # the paper's group count
    summaries = result.summaries
    # Ordering across ALL groups, not just the four displayed days.
    assert (
        summaries["OSSP"].mean_utility
        > summaries["online SSE"].mean_utility + 50.0
    )
    assert (
        summaries["OSSP"].mean_utility
        > summaries["offline SSE"].mean_utility + 50.0
    )
    # The two SSE baselines nearly overlap.
    assert (
        abs(
            summaries["online SSE"].mean_utility
            - summaries["offline SSE"].mean_utility
        )
        < 60.0
    )


def test_bench_full_eval_multi(benchmark, paper_store):
    result = benchmark.pedantic(
        run_full_evaluation,
        kwargs=dict(store=paper_store, setting="multi", max_groups=2),
        rounds=1,
        iterations=1,
    )

    print()
    print(format_full_evaluation(result))

    summaries = result.summaries
    assert (
        summaries["OSSP"].mean_utility
        > summaries["online SSE"].mean_utility + 50.0
    )
