"""Benchmark E5 — per-alert SAG optimization latency.

Reproduces: the paper's runtime claim ("the average running time is around
0.02 seconds" per alert, 7 types, laptop hardware). The benchmark times the
complete per-alert pipeline — estimation with rollback, LP (2) via seven
candidate LPs, LP (3)/Theorem-3 signaling, budget update — on the 7-type
workload at the paper's budget.
"""

from __future__ import annotations

import numpy as np

from repro.core.game import SAGConfig, SignalingAuditGame
from repro.experiments.config import (
    MULTI_TYPE_BUDGET,
    TABLE2_PAYOFFS,
    paper_costs,
)
from repro.experiments.runtime import PAPER_SECONDS_PER_ALERT
from repro.stats.estimator import FutureAlertEstimator, RollbackEstimator

_MIDDAY = 12 * 3600.0


def test_bench_per_alert_latency(benchmark, paper_store):
    train_days = paper_store.days[:41]
    history = paper_store.times_by_type(train_days, sorted(TABLE2_PAYOFFS))
    estimator = RollbackEstimator(FutureAlertEstimator(history))
    game = SignalingAuditGame(
        SAGConfig(
            payoffs=TABLE2_PAYOFFS, costs=paper_costs(), budget=MULTI_TYPE_BUDGET
        ),
        estimator,
        rng=np.random.default_rng(0),
    )

    def optimize_one_alert():
        decision = game.process_alert(1, _MIDDAY)
        game.reset()  # keep every round at the same (day-start) state
        return decision

    decision = benchmark(optimize_one_alert)

    assert decision.scheme is not None or not decision.signaling_applied
    # The paper reports ~0.02 s on a 2017 laptop; anything within 10x of
    # that on unknown hardware confirms the "users are unlikely to perceive
    # the extra processing time" claim.
    assert benchmark.stats.stats.mean < 10 * PAPER_SECONDS_PER_ALERT
    print(
        f"\nper-alert optimization: mean "
        f"{benchmark.stats.stats.mean * 1000:.2f} ms "
        f"(paper: {PAPER_SECONDS_PER_ALERT * 1000:.0f} ms)"
    )
