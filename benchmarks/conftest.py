"""Shared fixtures for the benchmark harness.

The benchmarks reproduce the paper's evaluation at full scale: a 56-day
synthetic dataset calibrated to Table 1, rolling 41-day training windows,
budgets 20 (single-type) and 50 (seven-type). The dataset is memoized per
process so every bench file shares one build.
"""

from __future__ import annotations

import pytest

from repro.experiments.dataset import build_alert_store

#: Dataset parameters shared by all benchmarks (paper scale: 56 days).
BENCH_SEED = 7
BENCH_DAYS = 56


@pytest.fixture(scope="session")
def paper_store():
    """The 56-day calibrated alert store used across all benchmarks."""
    return build_alert_store(seed=BENCH_SEED, n_days=BENCH_DAYS)
