"""Benchmark — scenario-suite throughput vs worker count.

Reproduces: the orchestrator acceptance target — running a 4-scenario
matrix (2 budgets x 2 attack timings) through the
:class:`~repro.scenarios.runner.ParallelRunner` must scale: at least 2x
wall-clock speedup at 4 workers versus serial, with the merged results
bit-identical at every worker count. The run writes its measurements to
``BENCH_suite.json`` (per-worker-count seconds, ``speedup_at_4``,
``deterministic``), which CI uploads as an artifact alongside
``BENCH_engine.json``.

The speedup floor is only enforced when the machine actually has >= 4
CPUs and multiprocessing uses the ``fork`` start method (pool workers
then inherit the parent's warmed dataset memo; under ``spawn`` each
timed parallel run would re-simulate the dataset the serial run gets
for free, skewing the ratio) — and never in ``--quick`` mode.
Determinism is enforced always.

Usage::

    PYTHONPATH=src python benchmarks/bench_suite.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time

from repro.scenarios import ParallelRunner, ScenarioMatrix, ScenarioSpec

#: Acceptance floor for the full-size run on a >= 4-CPU machine.
MIN_SPEEDUP = 2.0

#: Worker counts measured, in order.
WORKER_COUNTS = (1, 2, 4)


def build_matrix(seed: int, n_trials: int) -> tuple[ScenarioSpec, ...]:
    """The benchmark's 4-scenario matrix (2 budgets x 2 timings)."""
    base = ScenarioSpec(
        name="bench",
        seed=seed,
        n_days=10,
        training_window=8,
        normal_daily_mean=800.0,
        n_trials=n_trials,
    )
    return ScenarioMatrix(
        base, {"budget": (10.0, 20.0), "timing": ("uniform", "late")}
    ).expand()


def run_bench(seed: int = 7, n_trials: int = 48) -> dict:
    """Measure the matrix at each worker count; verify determinism."""
    specs = build_matrix(seed=seed, n_trials=n_trials)
    # Warm the memoized dataset outside the timed region so the first
    # worker count doesn't pay for simulation the others skip.
    for spec in specs:
        spec.build_world()

    seconds: dict[str, float] = {}
    payloads: dict[int, str] = {}
    for workers in WORKER_COUNTS:
        started = time.perf_counter()
        suite = ParallelRunner(workers=workers).run(specs)
        seconds[str(workers)] = time.perf_counter() - started
        payloads[workers] = json.dumps(suite.scenarios_payload(), sort_keys=True)

    reference = payloads[WORKER_COUNTS[0]]
    deterministic = all(payload == reference for payload in payloads.values())
    return {
        "n_scenarios": len(specs),
        "trials_per_scenario": n_trials,
        "cpu_count": os.cpu_count(),
        "seconds_by_workers": seconds,
        "speedup_at_4": seconds["1"] / seconds["4"] if seconds["4"] > 0 else 0.0,
        "deterministic": deterministic,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced trial count for CI smoke runs",
    )
    parser.add_argument(
        "--out", default="BENCH_suite.json", metavar="PATH",
        help="where to write the JSON measurements",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--trials", type=int, default=None,
        help="trials per scenario (default 48, quick 12)",
    )
    args = parser.parse_args(argv)

    n_trials = args.trials if args.trials is not None else (12 if args.quick else 48)
    payload = run_bench(seed=args.seed, n_trials=n_trials)
    payload["quick"] = bool(args.quick)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)

    print(_format(payload))
    print(f"wrote {args.out}")
    if not payload["deterministic"]:
        print(
            "FAIL: merged results differ across worker counts",
            file=sys.stderr,
        )
        return 1
    enforce = (
        not args.quick
        and (payload["cpu_count"] or 1) >= 4
        and multiprocessing.get_start_method() == "fork"
    )
    if enforce and payload["speedup_at_4"] < MIN_SPEEDUP:
        print(
            f"FAIL: speedup {payload['speedup_at_4']:.2f}x at 4 workers "
            f"below the {MIN_SPEEDUP:.0f}x acceptance floor",
            file=sys.stderr,
        )
        return 1
    return 0


def _format(payload: dict) -> str:
    lines = [
        f"Scenario suite scaling ({payload['n_scenarios']} scenarios, "
        f"{payload['trials_per_scenario']} trials each, "
        f"{payload['cpu_count']} CPUs)",
    ]
    for workers, seconds in payload["seconds_by_workers"].items():
        lines.append(f"  {workers} worker(s): {seconds:7.3f} s")
    lines.append(
        f"  speedup at 4 workers: {payload['speedup_at_4']:.2f}x  "
        f"(results deterministic: {payload['deterministic']})"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    sys.exit(main())
