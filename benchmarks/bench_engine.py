"""Benchmark — batch engine (analytic solver + solution cache) vs per-alert LP.

Reproduces: the engine acceptance target — replaying a 5-type, 1000-alert
stream through the :class:`~repro.engine.stream.BatchAuditEngine` (analytic
SSE backend + quantized solution cache) must be at least 5x faster than the
per-alert scipy/HiGHS path. The run writes its measurements to
``BENCH_engine.json`` (``speedup`` and ``cache_hit_rate`` fields), which CI
uploads as an artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.runtime import run_engine_comparison

#: Acceptance floor for the full-size run.
MIN_SPEEDUP = 5.0


def run_bench(
    n_alerts: int = 1000,
    n_types: int = 5,
    seed: int = 7,
    baseline_backend: str = "scipy",
) -> dict:
    """One engine-vs-baseline comparison as a JSON-ready dict."""
    result = run_engine_comparison(
        n_types=n_types,
        n_alerts=n_alerts,
        seed=seed,
        baseline_backend=baseline_backend,
    )
    return {
        "n_types": result.n_types,
        "n_alerts": result.n_alerts,
        "baseline_backend": result.baseline_backend,
        "baseline_seconds": result.baseline_seconds,
        "engine_seconds": result.engine_seconds,
        "speedup": result.speedup,
        "cache_hit_rate": result.cache_hit_rate,
        "sse_solves": result.sse_solves,
        "cache_entries": result.cache_entries,
        "budget_step": result.budget_step,
        "rate_step": result.rate_step,
        "mean_game_value_gap": result.mean_game_value_gap,
        "max_game_value_gap": result.max_game_value_gap,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced stream (200 alerts) for CI smoke runs",
    )
    parser.add_argument(
        "--out", default="BENCH_engine.json", metavar="PATH",
        help="where to write the JSON measurements",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--baseline-backend", choices=("scipy", "simplex"), default="scipy",
    )
    args = parser.parse_args(argv)

    payload = run_bench(
        n_alerts=200 if args.quick else 1000,
        seed=args.seed,
        baseline_backend=args.baseline_backend,
    )
    payload["quick"] = bool(args.quick)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)

    print(_format(payload))
    print(f"wrote {args.out}")
    if not args.quick and payload["speedup"] < MIN_SPEEDUP:
        print(
            f"FAIL: speedup {payload['speedup']:.1f}x below the "
            f"{MIN_SPEEDUP:.0f}x acceptance floor",
            file=sys.stderr,
        )
        return 1
    return 0


def _format(payload: dict) -> str:
    return (
        f"Batch engine vs per-alert {payload['baseline_backend']} "
        f"({payload['n_types']} types, {payload['n_alerts']} alerts)\n"
        f"  baseline : {payload['baseline_seconds']:.3f} s\n"
        f"  engine   : {payload['engine_seconds']:.3f} s\n"
        f"  speedup  : {payload['speedup']:.1f}x "
        f"(cache hit rate {payload['cache_hit_rate']:.1%})"
    )


if __name__ == "__main__":
    sys.exit(main())
