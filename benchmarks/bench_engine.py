"""Benchmark — batch engine (analytic solver + certified cache) vs per-alert LP.

Reproduces: the engine acceptance targets — replaying a 5-type, 1000-alert
stream through the :class:`~repro.engine.stream.BatchAuditEngine` (analytic
SSE backend + error-bounded adaptive solution cache) must be at least 5x
faster than the per-alert scipy/HiGHS path, **and** every game value it
serves must verify against an exact per-state re-solve within
:data:`MAX_GAME_VALUE_GAP` (the cache's certified ``error_budget``
contract — accuracy is gated alongside speed, in quick CI runs too).

A second section replays the identical stream in **policy-table mode**
(the precompiled certified table, the zero-solve steady-state path): its
verified per-state gap is gated by the same :data:`MAX_GAME_VALUE_GAP`
ceiling and its loop wall clock must beat the solve+cache path by at
least :data:`MIN_TABLE_SPEEDUP` — both enforced in quick CI runs too,
because they are invariants, not machine-speed claims. The absolute
``decisions_per_second`` figure is recorded (not gated; it tracks the
runner's hardware).

The run writes all measurements to ``BENCH_engine.json``, which CI
uploads as an artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.engine.cache import DEFAULT_ERROR_BUDGET
from repro.experiments.runtime import run_engine_comparison

#: Acceptance floor for the full-size run.
MIN_SPEEDUP = 5.0

#: Acceptance floor for the full-size run's cache hit rate.
MIN_HIT_RATE = 0.4

#: Gate on the verified per-state game-value error (quick runs included):
#: the certified adaptive policy promises ``error_budget`` accuracy, so a
#: regression here means the certificates stopped being sound.
MAX_GAME_VALUE_GAP = DEFAULT_ERROR_BUDGET

#: Floor on the compiled table's loop-wall advantage over the solve+cache
#: path (quick runs included). The measured ratio is an order of
#: magnitude higher; the floor only has to survive noisy shared runners.
MIN_TABLE_SPEEDUP = 2.0

#: Timing repeats for the table section's throughput figure (the table
#: loop is fast enough that scheduler noise dominates a single run).
TABLE_REPEATS = 3


def run_bench(
    n_alerts: int = 1000,
    n_types: int = 5,
    seed: int = 7,
    baseline_backend: str = "scipy",
    error_budget: float | None = DEFAULT_ERROR_BUDGET,
) -> dict:
    """One engine-vs-baseline comparison as a JSON-ready dict."""
    result = run_engine_comparison(
        n_types=n_types,
        n_alerts=n_alerts,
        seed=seed,
        baseline_backend=baseline_backend,
        error_budget=error_budget,
    )
    return {
        "n_types": result.n_types,
        "n_alerts": result.n_alerts,
        "baseline_backend": result.baseline_backend,
        "baseline_seconds": result.baseline_seconds,
        "engine_seconds": result.engine_seconds,
        "speedup": result.speedup,
        "cache_hit_rate": result.cache_hit_rate,
        "sse_solves": result.sse_solves,
        "cache_entries": result.cache_entries,
        "budget_step": result.budget_step,
        "rate_step": result.rate_step,
        "error_budget": result.error_budget,
        "mean_game_value_gap": result.mean_game_value_gap,
        "max_game_value_gap": result.max_game_value_gap,
        "mean_path_divergence": result.mean_path_divergence,
        "max_path_divergence": result.max_path_divergence,
    }


def _time_table_stream(
    n_alerts: int, seed: int, error_budget: float | None
) -> float:
    """Loop wall seconds for one table-mode replay (no baseline re-run)."""
    from repro.api.v1 import AlertEvent, AuditSession, SessionConfig
    from repro.core.game import CHARGE_EXPECTED
    from repro.experiments.runtime import synthetic_stream_workload

    payoffs, costs, history, types, times = synthetic_stream_workload(
        n_types=5, n_alerts=n_alerts, seed=seed
    )
    session = AuditSession.open(
        SessionConfig(
            tenant="bench-table",
            budget=50.0,
            payoffs=payoffs,
            costs=costs,
            backend="analytic",
            seed=seed,
            budget_charging=CHARGE_EXPECTED,
            cache_error_budget=error_budget,
            policy_table=True,
        ),
        history,
    )
    session.decide_batch([
        AlertEvent(
            tenant="bench-table", type_id=int(t), time_of_day=float(s)
        )
        for t, s in zip(types, times)
    ])
    report = session.close_cycle()
    session.close()
    return report.wall_seconds


def run_table_bench(
    n_alerts: int,
    seed: int,
    baseline_backend: str,
    error_budget: float | None,
    cache_engine_seconds: float,
) -> dict:
    """The policy-table section: verified accuracy + best-of-N throughput.

    One full comparison run supplies the verified per-state gap (every
    decision re-solved exactly through ``baseline_backend`` at the
    engine's realized state); additional timing-only replays of the same
    stream supply a stable loop-wall figure without paying the per-alert
    LP baseline again. ``speedup_vs_cache`` compares against the
    solve+cache section's loop wall on the identical stream.
    """
    result = run_engine_comparison(
        n_types=5,
        n_alerts=n_alerts,
        seed=seed,
        baseline_backend=baseline_backend,
        error_budget=error_budget,
        policy_table=True,
    )
    walls = [result.engine_seconds]
    for _ in range(TABLE_REPEATS - 1):
        walls.append(_time_table_stream(n_alerts, seed, error_budget))
    best_wall = min(walls)
    return {
        "n_alerts": n_alerts,
        "engine_seconds": walls,
        "best_engine_seconds": best_wall,
        "decisions_per_second": n_alerts / best_wall if best_wall > 0 else 0.0,
        "speedup_vs_baseline": (
            result.baseline_seconds / best_wall if best_wall > 0 else 0.0
        ),
        "speedup_vs_cache": (
            cache_engine_seconds / best_wall if best_wall > 0 else 0.0
        ),
        "table_hit_rate": result.table_hit_rate,
        "fallbacks": result.fallbacks,
        "compile_seconds": result.compile_seconds,
        "error_budget": result.error_budget,
        "mean_game_value_gap": result.mean_game_value_gap,
        "max_game_value_gap": result.max_game_value_gap,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced stream (200 alerts) for CI smoke runs",
    )
    parser.add_argument(
        "--out", default="BENCH_engine.json", metavar="PATH",
        help="where to write the JSON measurements",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--baseline-backend", choices=("scipy", "simplex"), default="scipy",
    )
    parser.add_argument(
        "--cache-error-budget", type=float, default=DEFAULT_ERROR_BUDGET,
        dest="error_budget", metavar="EPS",
        help="certified game-value error budget of the adaptive cache "
        f"(default {DEFAULT_ERROR_BUDGET:g})",
    )
    args = parser.parse_args(argv)

    n_alerts = 200 if args.quick else 1000
    payload = run_bench(
        n_alerts=n_alerts,
        seed=args.seed,
        baseline_backend=args.baseline_backend,
        error_budget=args.error_budget,
    )
    payload["policy_table"] = run_table_bench(
        n_alerts=n_alerts,
        seed=args.seed,
        baseline_backend=args.baseline_backend,
        error_budget=args.error_budget,
        cache_engine_seconds=payload["engine_seconds"],
    )
    payload["quick"] = bool(args.quick)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)

    print(_format(payload))
    print(f"wrote {args.out}")
    failed = False
    table = payload["policy_table"]
    # Accuracy is gated in every mode: the verified per-state gap must
    # honor the certified error budget, quick CI runs included — for the
    # solve+cache path and for the compiled table.
    if payload["max_game_value_gap"] > MAX_GAME_VALUE_GAP:
        print(
            f"FAIL: verified game-value gap {payload['max_game_value_gap']:.3e} "
            f"exceeds the gated {MAX_GAME_VALUE_GAP:.0e} ceiling",
            file=sys.stderr,
        )
        failed = True
    if table["max_game_value_gap"] > MAX_GAME_VALUE_GAP:
        print(
            f"FAIL: table-mode verified gap {table['max_game_value_gap']:.3e} "
            f"exceeds the gated {MAX_GAME_VALUE_GAP:.0e} ceiling",
            file=sys.stderr,
        )
        failed = True
    if table["speedup_vs_cache"] < MIN_TABLE_SPEEDUP:
        print(
            f"FAIL: table-vs-cache speedup {table['speedup_vs_cache']:.1f}x "
            f"below the {MIN_TABLE_SPEEDUP:.0f}x acceptance floor",
            file=sys.stderr,
        )
        failed = True
    if not args.quick and payload["speedup"] < MIN_SPEEDUP:
        print(
            f"FAIL: speedup {payload['speedup']:.1f}x below the "
            f"{MIN_SPEEDUP:.0f}x acceptance floor",
            file=sys.stderr,
        )
        failed = True
    if not args.quick and payload["cache_hit_rate"] < MIN_HIT_RATE:
        print(
            f"FAIL: cache hit rate {payload['cache_hit_rate']:.1%} below the "
            f"{MIN_HIT_RATE:.0%} acceptance floor",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def _format(payload: dict) -> str:
    table = payload["policy_table"]
    return (
        f"Batch engine vs per-alert {payload['baseline_backend']} "
        f"({payload['n_types']} types, {payload['n_alerts']} alerts)\n"
        f"  baseline     : {payload['baseline_seconds']:.3f} s\n"
        f"  engine       : {payload['engine_seconds']:.3f} s\n"
        f"  speedup      : {payload['speedup']:.1f}x "
        f"(cache hit rate {payload['cache_hit_rate']:.1%})\n"
        f"  verified gap : {payload['max_game_value_gap']:.3e} max "
        f"(gate {MAX_GAME_VALUE_GAP:.0e}, "
        f"error_budget {payload['error_budget']})\n"
        f"  policy table : {table['best_engine_seconds']:.4f} s best of "
        f"{len(table['engine_seconds'])} — "
        f"{table['decisions_per_second']:,.0f} decisions/s, "
        f"{table['speedup_vs_cache']:.1f}x vs cache "
        f"(floor {MIN_TABLE_SPEEDUP:.0f}x), "
        f"hit rate {table['table_hit_rate']:.1%}, "
        f"{table['fallbacks']} fallbacks\n"
        f"  table gap    : {table['max_game_value_gap']:.3e} max "
        f"(gate {MAX_GAME_VALUE_GAP:.0e}, compiled in "
        f"{table['compile_seconds']:.2f} s)"
    )


if __name__ == "__main__":
    sys.exit(main())
