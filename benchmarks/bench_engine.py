"""Benchmark — batch engine (analytic solver + certified cache) vs per-alert LP.

Reproduces: the engine acceptance targets — replaying a 5-type, 1000-alert
stream through the :class:`~repro.engine.stream.BatchAuditEngine` (analytic
SSE backend + error-bounded adaptive solution cache) must be at least 5x
faster than the per-alert scipy/HiGHS path, **and** every game value it
serves must verify against an exact per-state re-solve within
:data:`MAX_GAME_VALUE_GAP` (the cache's certified ``error_budget``
contract — accuracy is gated alongside speed, in quick CI runs too). The
run writes its measurements to ``BENCH_engine.json`` (``speedup``,
``cache_hit_rate``, and the gated ``max_game_value_gap``), which CI
uploads as an artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.engine.cache import DEFAULT_ERROR_BUDGET
from repro.experiments.runtime import run_engine_comparison

#: Acceptance floor for the full-size run.
MIN_SPEEDUP = 5.0

#: Acceptance floor for the full-size run's cache hit rate.
MIN_HIT_RATE = 0.4

#: Gate on the verified per-state game-value error (quick runs included):
#: the certified adaptive policy promises ``error_budget`` accuracy, so a
#: regression here means the certificates stopped being sound.
MAX_GAME_VALUE_GAP = DEFAULT_ERROR_BUDGET


def run_bench(
    n_alerts: int = 1000,
    n_types: int = 5,
    seed: int = 7,
    baseline_backend: str = "scipy",
    error_budget: float | None = DEFAULT_ERROR_BUDGET,
) -> dict:
    """One engine-vs-baseline comparison as a JSON-ready dict."""
    result = run_engine_comparison(
        n_types=n_types,
        n_alerts=n_alerts,
        seed=seed,
        baseline_backend=baseline_backend,
        error_budget=error_budget,
    )
    return {
        "n_types": result.n_types,
        "n_alerts": result.n_alerts,
        "baseline_backend": result.baseline_backend,
        "baseline_seconds": result.baseline_seconds,
        "engine_seconds": result.engine_seconds,
        "speedup": result.speedup,
        "cache_hit_rate": result.cache_hit_rate,
        "sse_solves": result.sse_solves,
        "cache_entries": result.cache_entries,
        "budget_step": result.budget_step,
        "rate_step": result.rate_step,
        "error_budget": result.error_budget,
        "mean_game_value_gap": result.mean_game_value_gap,
        "max_game_value_gap": result.max_game_value_gap,
        "mean_path_divergence": result.mean_path_divergence,
        "max_path_divergence": result.max_path_divergence,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced stream (200 alerts) for CI smoke runs",
    )
    parser.add_argument(
        "--out", default="BENCH_engine.json", metavar="PATH",
        help="where to write the JSON measurements",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--baseline-backend", choices=("scipy", "simplex"), default="scipy",
    )
    parser.add_argument(
        "--cache-error-budget", type=float, default=DEFAULT_ERROR_BUDGET,
        dest="error_budget", metavar="EPS",
        help="certified game-value error budget of the adaptive cache "
        f"(default {DEFAULT_ERROR_BUDGET:g})",
    )
    args = parser.parse_args(argv)

    payload = run_bench(
        n_alerts=200 if args.quick else 1000,
        seed=args.seed,
        baseline_backend=args.baseline_backend,
        error_budget=args.error_budget,
    )
    payload["quick"] = bool(args.quick)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)

    print(_format(payload))
    print(f"wrote {args.out}")
    failed = False
    # Accuracy is gated in every mode: the verified per-state gap must
    # honor the certified error budget, quick CI runs included.
    if payload["max_game_value_gap"] > MAX_GAME_VALUE_GAP:
        print(
            f"FAIL: verified game-value gap {payload['max_game_value_gap']:.3e} "
            f"exceeds the gated {MAX_GAME_VALUE_GAP:.0e} ceiling",
            file=sys.stderr,
        )
        failed = True
    if not args.quick and payload["speedup"] < MIN_SPEEDUP:
        print(
            f"FAIL: speedup {payload['speedup']:.1f}x below the "
            f"{MIN_SPEEDUP:.0f}x acceptance floor",
            file=sys.stderr,
        )
        failed = True
    if not args.quick and payload["cache_hit_rate"] < MIN_HIT_RATE:
        print(
            f"FAIL: cache hit rate {payload['cache_hit_rate']:.1%} below the "
            f"{MIN_HIT_RATE:.0%} acceptance floor",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def _format(payload: dict) -> str:
    return (
        f"Batch engine vs per-alert {payload['baseline_backend']} "
        f"({payload['n_types']} types, {payload['n_alerts']} alerts)\n"
        f"  baseline     : {payload['baseline_seconds']:.3f} s\n"
        f"  engine       : {payload['engine_seconds']:.3f} s\n"
        f"  speedup      : {payload['speedup']:.1f}x "
        f"(cache hit rate {payload['cache_hit_rate']:.1%})\n"
        f"  verified gap : {payload['max_game_value_gap']:.3e} max "
        f"(gate {MAX_GAME_VALUE_GAP:.0e}, "
        f"error_budget {payload['error_budget']})"
    )


if __name__ == "__main__":
    sys.exit(main())
