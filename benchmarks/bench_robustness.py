"""Benchmark X1 — robust SAG vs boundedly rational attackers.

Design-study for the paper's final future-work item ("a robust version of
the SAG should be developed for deployment"): realized OSSP utility from
attacker-in-the-loop simulation, crossed over attacker model (rational vs
quantal-response) and quit-constraint margin.

Expected shape: against the *rational* attacker the classic margin-0 OSSP
is optimal (hardening only costs utility); against the *noisy* attacker the
classic scheme leaks (warned attackers proceed ~half the time at the
indifference boundary) and a positive margin recovers much of the loss.
"""

from __future__ import annotations

from repro.experiments.robustness import format_robustness, run_robustness

_SEED = 7
_DAYS = 56


def test_bench_robustness(benchmark, paper_store):
    rows = benchmark.pedantic(
        run_robustness,
        kwargs=dict(
            store=paper_store, seed=_SEED, n_trials=40,
            rationality=20.0, margins=(0.0, 0.05, 0.1),
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(format_robustness(rows))

    by_cell = {(row.attacker, row.margin): row for row in rows}
    # Rational attackers quit on every warning regardless of margin, so all
    # rational cells live in the same regime.
    for margin in (0.0, 0.05, 0.1):
        assert ("rational", margin) in by_cell
        assert ("quantal", margin) in by_cell
    # Direction: hardening does not grossly hurt against the noisy attacker
    # (Monte-Carlo noise allowed), and quit compliance does not degrade.
    assert (
        by_cell[("quantal", 0.1)].mean_auditor_utility
        >= by_cell[("quantal", 0.0)].mean_auditor_utility - 80.0
    )
    assert (
        by_cell[("quantal", 0.1)].quit_rate
        >= by_cell[("quantal", 0.0)].quit_rate - 0.15
    )
