"""Benchmark A1 — knowledge-rollback ablation.

Reproduces: the paper's Section 5 discussion of knowledge rollback ("the
budget consumption in real time is more steady, such that the late attacker
is not afforded an obvious extra benefit"). The ablation runs the Figure 2
workload with rollback on and off; with rollback disabled, the late-day
estimate collapses, the budget model believes the day is over, and the
auditor's late-day expected utility degrades toward the uncovered loss.
"""

from __future__ import annotations

from repro.experiments.ablations import run_rollback_ablation

_SEED = 7     # matches the shared paper_store (memoized by build_alert_store)
_DAYS = 56


def test_bench_rollback_ablation(benchmark):
    result = benchmark.pedantic(
        run_rollback_ablation,
        kwargs=dict(seed=_SEED, n_days=_DAYS, n_test_days=2),
        rounds=1,
        iterations=1,
    )

    print(
        "\nknowledge rollback (OSSP, single type, late-day window):\n"
        f"  min coverage theta       : on {result.late_min_theta_with:8.4f}"
        f" / off {result.late_min_theta_without:8.4f}\n"
        f"  max attacker E[utility]  : on "
        f"{result.late_max_attacker_utility_with:8.1f}"
        f" / off {result.late_max_attacker_utility_without:8.1f}\n"
        f"  mean auditor E[utility]  : on {result.late_mean_utility_with:8.1f}"
        f" / off {result.late_mean_utility_without:8.1f}"
    )

    # The paper's rationale: rollback denies the late attacker an obvious
    # extra benefit — the worst late-alert coverage stays strictly higher,
    # equivalently the attacker's best late opening stays smaller.
    assert result.late_min_theta_with >= result.late_min_theta_without - 1e-9
    assert (
        result.late_max_attacker_utility_with
        <= result.late_max_attacker_utility_without + 1e-6
    )
