"""Benchmark E1 — regenerate Table 1 (daily alert statistics per type).

Reproduces: paper Table 1. The assertion checks that the synthetic
pipeline's *detected* per-type daily means land within a few paper standard
deviations of the published values — the calibration contract every other
experiment relies on.
"""

from __future__ import annotations

from repro.experiments.config import TABLE1_STATISTICS
from repro.experiments.table1 import format_table1, run_table1


def test_bench_table1(benchmark, paper_store):
    rows = benchmark(run_table1, store=paper_store)

    print()
    print(format_table1(rows))

    for row in rows:
        paper_mean, paper_std = TABLE1_STATISTICS[row.type_id]
        tolerance = max(3.0 * paper_std, 8.0)
        assert abs(row.measured_mean - paper_mean) <= tolerance, (
            f"type {row.type_id}: measured mean {row.measured_mean:.2f} "
            f"too far from paper's {paper_mean:.2f}"
        )
        # Spread should be the right order of magnitude, not degenerate.
        assert row.measured_std <= 4.0 * max(paper_std, 2.0)
