"""Robust signaling against a boundedly rational attacker.

Run with:  python examples/robust_attacker.py

The classic OSSP leaves the warned attacker *exactly* indifferent — a noisy
(quantal-response) attacker then proceeds about half the time, eroding the
value of the warning. This example (the paper's "robust SAG" future-work
direction, implemented in :mod:`repro.extensions.robust`) hardens the quit
constraint with a margin and shows the trade-off curve, then picks the
optimal margin for a range of attacker rationalities.
"""

from repro.audit.attacker import QuantalResponseAttacker
from repro.experiments.config import TABLE2_PAYOFFS
from repro.extensions.robust import (
    evaluate_against_quantal,
    optimize_margin,
    solve_robust_ossp,
)

THETA = 0.10          # marginal audit probability for the arriving alert
TYPE_ID = 1           # Same Last Name


def main() -> None:
    payoff = TABLE2_PAYOFFS[TYPE_ID]
    attacker = QuantalResponseAttacker(rationality=20.0)

    print(f"type {TYPE_ID}, theta = {THETA}, attacker rationality = "
          f"{attacker.rationality}\n")
    print(f"{'margin':>7} {'warn P':>7} {'proceed P':>10} {'utility':>9}")
    for margin in (0.0, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5):
        scheme = solve_robust_ossp(THETA, payoff, margin)
        proceed = attacker.proceed_probability(scheme, payoff)
        value = evaluate_against_quantal(scheme, payoff, attacker)
        print(f"{margin:>7.2f} {scheme.warning_probability:>7.3f} "
              f"{proceed:>10.3f} {value:>9.1f}")

    print("\noptimal margin by attacker rationality:")
    print(f"{'rationality':>12} {'margin':>7} {'robust util':>12} "
          f"{'classic util':>13} {'gain':>8}")
    for rationality in (2.0, 5.0, 10.0, 20.0, 50.0, 200.0):
        result = optimize_margin(
            THETA, payoff, QuantalResponseAttacker(rationality)
        )
        print(
            f"{rationality:>12.0f} {result.margin:>7.2f} "
            f"{result.utility_vs_quantal:>12.1f} "
            f"{result.classic_utility_vs_quantal:>13.1f} "
            f"{result.robustness_gain:>8.1f}"
        )


if __name__ == "__main__":
    main()
