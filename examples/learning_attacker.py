"""A learning attacker closing its regret gap on a static rational baseline.

Run with:  python examples/learning_attacker.py

The paper's attacker is perfectly rational and *fully informed*: he knows
the auditor's committed coverage and best-responds from cycle one, so his
regret is zero by definition. An adaptive attacker starts ignorant and has
to learn the coverage from observed audit cycles. This example drives a
Hedge-based :class:`~repro.learning.attackers.NoRegretAttacker` and a
Beta-posterior :class:`~repro.learning.attackers.BayesianLearningAttacker`
through ten replayed audit cycles (:func:`~repro.learning.loop.run_learning_loop`)
and plots each per-cycle average-regret curve against the rational
attacker's flat zero line.
"""

from repro.learning import (
    BayesianLearningAttacker,
    NoRegretAttacker,
    run_learning_loop,
)
from repro.scenarios import ScenarioSpec

CYCLES = 10
PLOT_WIDTH = 40


def textplot(values, width=PLOT_WIDTH) -> list[str]:
    """One horizontal bar per cycle, scaled to the largest value."""
    top = max(max(values), 1e-12)
    lines = []
    for cycle, value in enumerate(values, start=1):
        bar = "#" * max(1, round(width * value / top)) if value > 0 else ""
        lines.append(f"  cycle {cycle:>2} |{bar:<{width}}| {value:.4f}")
    return lines


def main() -> None:
    spec = ScenarioSpec(
        name="example-learning", n_days=4, training_window=3,
        attacker="no_regret", learning_cycles=CYCLES,
        backend="fictitious_play",
    )
    alerts, context, _split = spec.build_world()
    print(f"world: {len(alerts)} alerts/cycle, backend={spec.backend}, "
          f"{CYCLES} cycles\n")

    print("static rational attacker (paper baseline): fully informed, "
          "best-responds immediately")
    print("  regret = 0.0000 at every cycle\n")

    hedge = run_learning_loop(
        NoRegretAttacker(learning_rate=spec.learning_rate),
        alerts, context, cycles=CYCLES,
    )
    print("no-regret (Hedge over attack types): average regret per cycle")
    print("\n".join(textplot(hedge.regret)))
    print(f"  regret {hedge.regret[0]:.4f} -> {hedge.regret[-1]:.4f}, "
          f"final exploitability gap {hedge.exploit_gap[-1]:.4f}\n")

    # The Bayesian learner plays a best response to his posterior mean, so
    # his own-play regret is flat zero; the informative curve is the gap to
    # the best response against the TRUE coverage, which collapses the
    # cycle his posterior crosses the break-even coverage.
    bayes = run_learning_loop(
        BayesianLearningAttacker(observation_weight=4.0),
        alerts, context, cycles=CYCLES,
    )
    print("bayesian (Beta posterior over coverage): exploitability gap "
          "per cycle")
    print("\n".join(textplot(bayes.exploit_gap)))
    print(f"  gap {bayes.exploit_gap[0]:.4f} -> {bayes.exploit_gap[-1]:.4f}, "
          f"posterior entropy {bayes.posterior_entropy[0]:.3f} -> "
          f"{bayes.posterior_entropy[-1]:.3f}\n")

    print("the rational attacker's zero-regret line is the floor both "
          "learners decay toward;\nthe auditor's SSE commitment is "
          "attacker-model-free, so the defense needs no retuning.")


if __name__ == "__main__":
    main()
