"""Many hospitals, one service: multi-tenant serving with async streaming.

Run with:  python examples/multi_tenant_service.py

The production shape of the reproduction: a single long-lived
:class:`repro.api.v1.AuditService` serves several organizations at once.
Each tenant gets its own :class:`AuditSession` (game state, budget,
cache, seed); events from all tenants arrive interleaved on one stream.
The example drives the same traffic twice —

* through the synchronous hot path (:meth:`AuditService.submit`, batched
  through the engine), and
* through the ``asyncio`` streaming interface
  (``async for decision in service.stream(events)``) with bounded
  backpressure —

and checks the decisions are bit-identical, which is the façade's core
contract: the interface never changes a decision.
"""

import asyncio

import numpy as np

from repro.api.v1 import AlertEvent, AuditService, SessionConfig
from repro.core.payoffs import PayoffMatrix

PAYOFFS = {1: PayoffMatrix(u_dc=100.0, u_du=-400.0, u_ac=-2000.0, u_au=400.0)}
TENANTS = ("st-jude", "county-ehr", "lakeside-clinic")


def build_events(seed: int) -> list[AlertEvent]:
    """Interleaved multi-tenant traffic: ~40 alerts per tenant, merged."""
    rng = np.random.default_rng(seed)
    events = []
    for tenant in TENANTS:
        for i, t in enumerate(np.sort(rng.uniform(0, 86400, 40))):
            events.append(
                AlertEvent(tenant=tenant, type_id=1, time_of_day=float(t),
                           event_id=i)
            )
    events.sort(key=lambda event: event.time_of_day)
    return events


def open_tenants(service: AuditService, seed: int) -> None:
    """One session per hospital, each with its own budget and history."""
    rng = np.random.default_rng(seed)
    for index, tenant in enumerate(TENANTS):
        history = {1: [np.sort(rng.uniform(0, 86400, 40)) for _ in range(3)]}
        service.open_session(
            SessionConfig(
                tenant=tenant,
                budget=10.0 + 5.0 * index,   # every tenant its own regime
                payoffs=PAYOFFS,
                costs={1: 1.0},
                seed=17 + index,
            ),
            history,
        )


async def run_streaming(events: list[AlertEvent]) -> list:
    """The asyncio path: decisions arrive as an async iterator."""
    service = AuditService()
    open_tenants(service, seed=3)
    decisions = []
    async for decision in service.stream(events, max_pending=16):
        decisions.append(decision)
    service.close()
    return decisions


def main() -> None:
    events = build_events(seed=3)
    print(f"{len(events)} events from {len(TENANTS)} tenants, interleaved\n")

    # Synchronous hot path: consecutive same-tenant runs are batched
    # through the engine's stream API.
    service = AuditService()
    open_tenants(service, seed=3)
    sync_decisions = service.submit(events)
    for tenant in service.tenants:
        report = service.session(tenant).close_cycle()
        print(f"  {report.tenant:16s} {report.alerts:3d} alerts  "
              f"{report.warnings_sent:2d} warnings  "
              f"budget {report.budget_initial:4.0f} -> {report.budget_final:5.2f}  "
              f"mean value {report.mean_game_value:8.2f}")
    stats = service.close()
    print(f"\nservice totals: {stats.events} events, "
          f"{stats.tenants} tenants, cache hit rate {stats.hit_rate:.0%}")

    # Async streaming path over fresh sessions: same seeds, same order per
    # tenant => bit-identical decisions.
    async_decisions = asyncio.run(run_streaming(events))
    identical = tuple(async_decisions) == tuple(sync_decisions)
    print(f"async streaming produced {len(async_decisions)} decisions; "
          f"bit-identical to the sync path: {identical}")
    if not identical:
        raise SystemExit("interface changed a decision — contract broken")


if __name__ == "__main__":
    main()
