"""A full hospital audit day, end to end.

Run with:  python examples/hospital_day.py

Builds the synthetic hospital (population, calibrated access log, rule
engine), trains the future-alert estimator on historical days, then drives
one live audit cycle with the Signaling Audit Game: every arriving alert
gets a real-time SSE solve, a warning decision, and a budget charge —
exactly the deployment loop the paper envisions.
"""

import numpy as np

from repro import SAGConfig, SignalingAuditGame
from repro.experiments.config import (
    MULTI_TYPE_BUDGET,
    TABLE2_PAYOFFS,
    paper_costs,
)
from repro.experiments.dataset import build_dataset
from repro.stats.estimator import FutureAlertEstimator, RollbackEstimator

N_DAYS = 12          # 11 historical days + 1 live day (paper uses 41 + 1)
LIVE_DAY = N_DAYS - 1


def main() -> None:
    print("building synthetic hospital and simulating", N_DAYS, "days ...")
    dataset = build_dataset(seed=11, n_days=N_DAYS, normal_daily_mean=2000)
    store = dataset.store
    print(f"  {dataset.n_accesses} accesses, {dataset.n_alerts} detected alerts")

    train_days = store.days[:LIVE_DAY]
    history = store.times_by_type(train_days, sorted(TABLE2_PAYOFFS))
    estimator = RollbackEstimator(FutureAlertEstimator(history))

    game = SignalingAuditGame(
        SAGConfig(
            payoffs=TABLE2_PAYOFFS,
            costs=paper_costs(),
            budget=MULTI_TYPE_BUDGET,
        ),
        estimator,
        rng=np.random.default_rng(5),
    )

    live_alerts = store.day_alerts(LIVE_DAY)
    print(f"\nlive day has {len(live_alerts)} alerts; budget {MULTI_TYPE_BUDGET}\n")
    warnings_sent = 0
    for alert in live_alerts:
        decision = game.process_alert(alert.type_id, alert.time_of_day)
        if decision.warned:
            warnings_sent += 1
        # Print a sample of the stream.
        if alert.alert_id % 60 == 0:
            hh, mm = divmod(int(alert.time_of_day) // 60, 60)
            print(
                f"  {hh:02d}:{mm:02d}  type {alert.type_id}  "
                f"theta={decision.theta:.3f}  "
                f"{'WARN' if decision.warned else 'silent':6s}  "
                f"audit P={decision.audit_probability:.3f}  "
                f"budget left={decision.budget_after:6.2f}  "
                f"game value={decision.game_value:8.2f}"
            )

    decisions = game.decisions
    values = np.array([d.game_value for d in decisions])
    latencies = np.array([d.solve_seconds for d in decisions])
    print(f"\nsummary over {len(decisions)} alerts:")
    print(f"  warnings sent              : {warnings_sent}")
    print(f"  mean auditor expected util : {values.mean():9.2f}")
    print(f"  final auditor expected util: {values[-1]:9.2f}")
    print(f"  budget remaining           : {game.budget_remaining:.2f}")
    print(f"  mean per-alert solve time  : {latencies.mean() * 1000:.1f} ms "
          "(paper reports ~20 ms)")


if __name__ == "__main__":
    main()
