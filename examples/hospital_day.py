"""A full hospital audit day, end to end, through the serving API.

Run with:  python examples/hospital_day.py

Builds the synthetic hospital (population, calibrated access log, rule
engine), then opens an :class:`repro.api.v1.AuditSession` for the tenant:
the session owns the future-alert estimator trained on historical days,
the budget ledger, and the solution cache. Every arriving alert becomes an
:class:`AlertEvent`; every decision is a typed, JSON-ready
:class:`SignalDecision` — exactly the deployment loop the paper envisions,
behind the same façade a multi-tenant service would use.
"""

import numpy as np

from repro.api.v1 import AlertEvent, AuditSession, SessionConfig
from repro.experiments.config import (
    MULTI_TYPE_BUDGET,
    TABLE2_PAYOFFS,
    paper_costs,
)
from repro.experiments.dataset import build_dataset

N_DAYS = 12          # 11 historical days + 1 live day (paper uses 41 + 1)
LIVE_DAY = N_DAYS - 1
TENANT = "mercy-general"


def main() -> None:
    print("building synthetic hospital and simulating", N_DAYS, "days ...")
    dataset = build_dataset(seed=11, n_days=N_DAYS, normal_daily_mean=2000)
    store = dataset.store
    print(f"  {dataset.n_accesses} accesses, {dataset.n_alerts} detected alerts")

    history = store.times_by_type(store.days[:LIVE_DAY], sorted(TABLE2_PAYOFFS))
    session = AuditSession.open(
        SessionConfig(
            tenant=TENANT,
            budget=MULTI_TYPE_BUDGET,
            payoffs=TABLE2_PAYOFFS,
            costs=paper_costs(),
            seed=5,
        ),
        history,
    )

    live_alerts = store.day_alerts(LIVE_DAY)
    print(f"\nlive day has {len(live_alerts)} alerts; budget {MULTI_TYPE_BUDGET}\n")
    values = []
    for alert in live_alerts:
        decision = session.decide(
            AlertEvent(
                tenant=TENANT,
                type_id=alert.type_id,
                time_of_day=alert.time_of_day,
                event_id=alert.alert_id,
            )
        )
        values.append(decision.game_value)
        # Print a sample of the stream.
        if alert.alert_id % 60 == 0:
            hh, mm = divmod(int(alert.time_of_day) // 60, 60)
            print(
                f"  {hh:02d}:{mm:02d}  type {decision.type_id}  "
                f"theta={decision.theta:.3f}  "
                f"{'WARN' if decision.warned else 'silent':6s}  "
                f"audit P={decision.audit_probability:.3f}  "
                f"budget left={decision.budget_remaining:6.2f}  "
                f"game value={decision.game_value:8.2f}"
            )

    report = session.close_cycle()
    session.close()
    print(f"\ncycle report for tenant {report.tenant!r}:")
    print(f"  alerts decided             : {report.alerts}")
    print(f"  warnings sent              : {report.warnings_sent}")
    print(f"  mean auditor expected util : {report.mean_game_value:9.2f}")
    print(f"  final auditor expected util: {report.final_game_value:9.2f}")
    print(f"  budget remaining           : {report.budget_final:.2f}")
    print(f"  mean per-alert decide time : "
          f"{report.wall_seconds / report.alerts * 1000:.1f} ms "
          "(paper reports ~20 ms)")


if __name__ == "__main__":
    main()
