"""Foreign-schema ingestion: a site-specific dump in, decisions out.

Run with:  python examples/ingest_foreign_schema.py

Real hospital data never arrives shaped like the simulator's entity
lists — it arrives as a handful of tables in a site-specific schema,
tied together by universal keys (patient number ``hn``, admission
number ``an``, visit number ``vn``). This example walks the whole
ingest pipeline on a generated demo dump:

1. generate a foreign-schema dump (``staff``/``person``/``opd_visit``/
   ``access_log`` tables) and the declarative ``SchemaMapping`` that
   projects it onto the canonical roles;
2. stream it through ``MappedSource`` — entity resolution and alert
   *typing by the real rule engine*, nothing labeled by the mapping;
3. open an audit session over the source via ``repro.api.v1`` and
   decide the test day's alerts;
4. journal the typed alert log and replay it bit-identically through
   ``LogReplaySource`` — the replay half of the source contract.
"""

import tempfile
from pathlib import Path

import repro.api.v1 as v1
from repro.emr.engine import PAPER_TYPE_NAMES
from repro.ingest import (
    GeneratorConfig,
    LogReplaySource,
    MappedSource,
    foreign_mapping,
    generate_tables,
    small_population,
)
from repro.scenarios import get_scenario


def main() -> None:
    # 1. A demo dump, in memory: four foreign tables + their mapping.
    config = GeneratorConfig(
        seed=11, n_days=6, daily_accesses=900, daily_suspicious=40,
        population=small_population(),
    )
    tables = generate_tables(config)
    mapping = foreign_mapping()
    print(f"foreign dump: {', '.join(sorted(tables))} "
          f"({len(tables['access_log'])} access rows over "
          f"{config.n_days} days)")
    print(f"mapping {mapping.name!r}: keys hn/an/vn, "
          f"{len(mapping.accesses.columns)} access columns spelled out\n")

    # 2. Through the mapping: the rule engine types every access.
    source = MappedSource(mapping, tables)
    store = source.build_store()
    print(f"rule engine typed {len(store)} alerts from "
          f"{source.n_access_rows} rows:")
    for type_id, count in sorted(source.type_counts().items()):
        name = PAPER_TYPE_NAMES.get(type_id, "extra combination")
        print(f"  type {type_id:3d}  {count:4d}  {name}")

    # 3. Decide the test day through the façade. The scenario spec
    # contributes the game configuration and tenant name only.
    spec = get_scenario("fig2-uniform")
    session, events = v1.open_source(spec, source)
    warned = 0
    for event in events:
        decision = session.decide(event)
        warned += decision.warned
    report = session.close_cycle()
    session.close()
    print(f"\ndecided {len(events)} alerts for tenant {spec.name!r}: "
          f"{report.warnings_sent} warnings ({warned} observed), budget "
          f"{report.budget_final:.2f} of {report.budget_initial:.0f} left")

    # 4. Journal + replay: identical records, identical ids.
    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "alerts.jsonl"
        source.journal(journal)
        replayed = LogReplaySource(str(journal)).build_store()
        identical = [
            (r.alert_id, r.day, r.time_of_day, r.type_id)
            for day in store.days for r in store.day_alerts(day)
        ] == [
            (r.alert_id, r.day, r.time_of_day, r.type_id)
            for day in replayed.days for r in replayed.day_alerts(day)
        ]
        print(f"journal replay bit-identical: {identical} "
              f"(descriptor {source.replay()})")


if __name__ == "__main__":
    main()
