"""The serving plane end to end: HTTP server, wire client, kill-and-restore.

Run with:  python examples/http_service.py

The deployment shape of the reproduction: a durable
:class:`repro.api.v1.AuditService` bound to a loopback HTTP socket
(:func:`repro.api.serve_http`), driven by the one
:class:`repro.api.ReproClient` over both transports. The example

* opens two hospital tenants over the wire and decides interleaved
  traffic through the streaming ndjson hot path,
* retries a decision with the same sequence number and shows the
  recorded decision coming back (wire idempotency — no double-charged
  budget),
* "crashes" the server (drops it without closing), restores a fresh
  service from the write-ahead logs, and verifies the restored tenant
  continues the cycle bit-identically against an in-process twin.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.api import ReproClient, serve_http
from repro.api.v1 import AlertEvent, AuditService, SessionConfig
from repro.core.payoffs import PayoffMatrix

PAYOFFS = {1: PayoffMatrix(u_dc=100.0, u_du=-400.0, u_ac=-2000.0, u_au=400.0)}
TENANTS = ("st-jude", "county-ehr")


def config_for(tenant: str, index: int) -> SessionConfig:
    return SessionConfig(
        tenant=tenant, budget=10.0, payoffs=PAYOFFS, costs={1: 1.0},
        seed=100 + index,
    )


def history_for(index: int) -> dict:
    rng = np.random.default_rng(index)
    return {1: [np.sort(rng.uniform(0, 86400, 40)) for _ in range(3)]}


def build_events() -> list[AlertEvent]:
    rng = np.random.default_rng(7)
    events = []
    for tenant in TENANTS:
        for t in np.sort(rng.uniform(0, 43200, 25)):
            events.append(
                AlertEvent(tenant=tenant, type_id=1, time_of_day=float(t))
            )
    events.sort(key=lambda event: event.time_of_day)
    return events


def main() -> None:
    state_dir = Path(tempfile.mkdtemp(prefix="repro-wal-"))
    events = build_events()

    # --- A durable service on a loopback socket --------------------------
    service = AuditService(state_dir=state_dir)
    with serve_http(service).start_background() as server:
        client = ReproClient.connect(server.url)
        print(f"serving on {server.url}  ->  {client.healthz()}")

        for index, tenant in enumerate(TENANTS):
            client.open_session(config_for(tenant, index), history_for(index))

        decisions = client.submit(events)
        warned = sum(decision.warned for decision in decisions)
        print(f"wire submit: {len(decisions)} decisions, {warned} warnings")

        # Wire idempotency: a retry with a recorded sequence number is
        # answered from the record — budget cannot be double-charged.
        late = AlertEvent(tenant=TENANTS[0], type_id=1, time_of_day=50000.0)
        first = client.decide(late, seq=1)
        again, replayed = client.decide_idempotent(late, seq=1)
        assert replayed and again == first
        print(f"idempotent retry replayed recorded decision "
              f"(budget stays {first.budget_remaining:.3f})")
    # Server dropped without close(): the WAL is all that survives.

    # --- Crash recovery: replay the write-ahead logs ---------------------
    restored = AuditService.restore(state_dir)
    print(f"restored tenants from WAL: {restored.tenants}")

    # An in-process twin fed the identical stream proves the restored
    # service resumes mid-cycle bit-identically.
    twin = ReproClient.in_process()
    for index, tenant in enumerate(TENANTS):
        twin.open_session(config_for(tenant, index), history_for(index))
    twin.submit(events)
    twin.decide(late, seq=1)

    follow_up = AlertEvent(tenant=TENANTS[0], type_id=1, time_of_day=60000.0)
    resumed = ReproClient.in_process(service=restored)
    left = resumed.decide(follow_up)
    right = twin.decide(follow_up)
    assert left == right
    print(f"post-restore decision matches uninterrupted twin: "
          f"theta={left.theta:.4f} warned={left.warned}")

    for tenant in TENANTS:
        report = resumed.close_cycle(tenant)
        print(f"  {tenant}: {report.alerts} alerts, "
              f"{report.warnings_sent} warnings, "
              f"budget {report.budget_initial:.0f} -> "
              f"{report.budget_final:.2f}")


if __name__ == "__main__":
    main()
