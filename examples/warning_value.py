"""When does warning help? Signaling value across budgets and alert types.

Run with:  python examples/warning_value.py

Theorem 2 says signaling never hurts; this example maps out *how much* it
helps. For each alert type and a sweep of budgets it compares the auditor's
expected utility with and without the warning mechanism at the day-start
game state, showing the classic pattern: signaling is most valuable when
the budget is too small to deter the attacker outright, and the gap closes
once coverage reaches the deterrence threshold.
"""

from repro.core.sse import GameState, solve_online_sse
from repro.core.theory import ossp_auditor_utility, sse_auditor_utility
from repro.experiments.config import TABLE1_STATISTICS, TABLE2_PAYOFFS, paper_costs

BUDGETS = (5.0, 10.0, 20.0, 40.0, 80.0, 160.0)


def main() -> None:
    costs = paper_costs()
    print(f"{'type':>4} {'budget':>7} {'theta':>7} {'no-signal':>10} "
          f"{'with-signal':>11} {'gain':>9} {'deterred':>9}")
    for type_id, (daily_mean, _) in sorted(TABLE1_STATISTICS.items()):
        payoff = TABLE2_PAYOFFS[type_id]
        for budget in BUDGETS:
            state = GameState(budget=budget, lambdas={type_id: daily_mean})
            sse = solve_online_sse(
                state, {type_id: payoff}, {type_id: costs[type_id]}
            )
            theta = sse.theta_of(type_id)
            without = sse_auditor_utility(theta, payoff)
            with_signal = ossp_auditor_utility(theta, payoff)
            deterred = payoff.attacker_utility(theta) < 0
            print(
                f"{type_id:>4} {budget:>7.0f} {theta:>7.3f} {without:>10.1f} "
                f"{with_signal:>11.1f} {with_signal - without:>9.1f} "
                f"{'yes' if deterred else 'no':>9}"
            )
        print()


if __name__ == "__main__":
    main()
