"""Quickstart: solve one alert's Signaling Audit Game end to end.

Run with:  python examples/quickstart.py

Walks the minimal path a downstream user takes: define payoffs, state the
game (budget + expected future alerts), compute the online SSE marginals
(LP (2)), derive the optimal warning scheme (LP (3) / Theorem 3), and read
off the value of signaling.
"""

from repro import GameState, PayoffMatrix, solve_online_sse, solve_ossp


def main() -> None:
    # Payoffs for the "Same Last Name" alert type (paper Table 2, type 1):
    # auditing a real attack pays the auditor 100, missing it costs 400;
    # a caught attacker loses 2000, an uncaught one gains 400.
    payoffs = {1: PayoffMatrix(u_dc=100.0, u_du=-400.0, u_ac=-2000.0, u_au=400.0)}
    costs = {1: 1.0}

    # Game state at the time an alert arrives: 20 budget units remain and
    # history says ~196.57 more type-1 alerts are expected today.
    state = GameState(budget=20.0, lambdas={1: 196.57})

    # Step 1 — online SSE (LP (2)): the marginal audit probabilities.
    sse = solve_online_sse(state, payoffs, costs)
    theta = sse.theta_of(1)
    print(f"marginal audit probability theta = {theta:.4f}")
    print(f"auditor utility without signaling = {sse.auditor_utility:9.2f}")
    print(f"attacker utility                  = {sse.attacker_utility:9.2f}")

    # Step 2 — OSSP (LP (3)): the joint warning/audit distribution.
    scheme = solve_ossp(theta, payoffs[1])
    print("\noptimal signaling scheme:")
    print(f"  P(warn, audit)       p1 = {scheme.p1:.4f}")
    print(f"  P(warn, no audit)    q1 = {scheme.q1:.4f}")
    print(f"  P(silent, audit)     p0 = {scheme.p0:.4f}   (Theorem 3: 0)")
    print(f"  P(silent, no audit)  q0 = {scheme.q0:.4f}")
    print(f"  warning shown with probability {scheme.warning_probability:.4f}")

    # Step 3 — the value of warning (Theorem 2 guarantees >= 0).
    with_signaling = scheme.auditor_utility(payoffs[1])
    without = payoffs[1].auditor_utility(theta)
    print(f"\nauditor utility with signaling    = {with_signaling:9.2f}")
    print(f"auditor utility without signaling = {without:9.2f}")
    print(f"value of the warning mechanism    = {with_signaling - without:9.2f}")


if __name__ == "__main__":
    main()
