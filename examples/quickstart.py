"""Quickstart: serve one alert's Signaling Audit Game through the API.

Run with:  python examples/quickstart.py

Walks the minimal path a downstream user takes through the public façade
(:mod:`repro.api.v1`): configure a tenant session (payoffs, budget),
open it over historical traffic, decide one arriving alert — one call
runs the whole online pipeline (estimation, LP (2) marginals, the
Theorem 3 warning scheme, the budget charge) — and read off the value of
signaling from the typed decision payload.
"""

import numpy as np

from repro.api.v1 import AlertEvent, AuditSession, SessionConfig
from repro.core.payoffs import PayoffMatrix


def main() -> None:
    # Payoffs for the "Same Last Name" alert type (paper Table 2, type 1):
    # auditing a real attack pays the auditor 100, missing it costs 400;
    # a caught attacker loses 2000, an uncaught one gains 400.
    config = SessionConfig(
        tenant="hospital-a",
        budget=20.0,
        payoffs={1: PayoffMatrix(u_dc=100.0, u_du=-400.0, u_ac=-2000.0, u_au=400.0)},
        costs={1: 1.0},
        seed=7,
    )

    # Historical traffic drives the future-alert estimate: three past days
    # of ~196 type-1 alerts each (the paper's Table 1 volume).
    rng = np.random.default_rng(0)
    history = {1: [np.sort(rng.uniform(0, 86400, 196)) for _ in range(3)]}

    session = AuditSession.open(config, history)
    decision = session.decide(
        AlertEvent(tenant="hospital-a", type_id=1, time_of_day=8 * 3600.0)
    )

    print(f"marginal audit probability theta = {decision.theta:.4f}")
    print(f"warning shown                    = {decision.warned}")
    print(f"audit probability (given signal) = {decision.audit_probability:.4f}")
    print(f"budget remaining                 = {decision.budget_remaining:.4f}")

    # The value of warning (Theorem 2 guarantees >= 0): the decision
    # carries both the signaling (OSSP) and no-signaling (SSE) values.
    print(f"\nauditor utility with signaling    = {decision.ossp_utility:9.2f}")
    print(f"auditor utility without signaling = {decision.sse_utility:9.2f}")
    print(f"value of the warning mechanism    = {decision.signaling_gain:9.2f}")

    # Close the cycle to get the day's report (one alert so far), then
    # retire the session.
    report = session.close_cycle()
    print(f"\ncycle report: {report.alerts} alert(s), "
          f"{report.warnings_sent} warning(s), "
          f"budget {report.budget_initial:.0f} -> {report.budget_final:.2f}")
    session.close()

    # Every payload is JSON-round-trippable — ship it over any wire.
    print("\ndecision as JSON:")
    print(decision.to_json(indent=2))


if __name__ == "__main__":
    main()
