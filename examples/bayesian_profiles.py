"""Bayesian SAG: auditing under attacker-profile uncertainty.

Run with:  python examples/bayesian_profiles.py

The paper's first future-work item: "in practice, there may exist many
types of attacker. Thus, SAG can be generalized into Bayesian setting."
This example builds a two-profile world — a *timid* insider (large penalty
if caught, modest gain) and a *bold* one (small penalty, large gain) —
and walks both stages of the Bayesian pipeline:

1. the Bayesian online SSE: budget allocation when each profile
   best-responds with its own alert type;
2. the Bayesian OSSP: one warning policy that optimally chooses *which*
   profiles to deter.
"""

from repro.core.payoffs import PayoffMatrix
from repro.extensions.bayesian import (
    BayesianAttackerModel,
    BayesianGame,
    solve_bayesian_ossp,
    solve_bayesian_sse,
)
from repro.stats.poisson import PoissonReciprocalMoment

AUDITOR = {
    1: PayoffMatrix(u_dc=100.0, u_du=-400.0, u_ac=-2000.0, u_au=400.0),
    3: PayoffMatrix(u_dc=150.0, u_du=-600.0, u_ac=-2500.0, u_au=450.0),
}
TIMID = {
    1: PayoffMatrix(100.0, -400.0, -5000.0, 300.0),
    3: PayoffMatrix(150.0, -600.0, -6000.0, 250.0),
}
BOLD = {
    1: PayoffMatrix(100.0, -400.0, -600.0, 700.0),
    3: PayoffMatrix(150.0, -600.0, -500.0, 900.0),
}
LAMBDAS = {1: 196.57, 3: 140.46}   # Table 1 daily means
BUDGET = 20.0


def main() -> None:
    moment = PoissonReciprocalMoment()
    coefficients = {t: moment(lam) for t, lam in LAMBDAS.items()}

    print("two attacker profiles: timid (60%) / bold (40%)\n")
    game = BayesianGame(
        auditor_payoffs=AUDITOR,
        attacker_payoffs=(TIMID, BOLD),
        prior=(0.6, 0.4),
    )
    sse = solve_bayesian_sse(game, BUDGET, coefficients)
    print(f"Bayesian SSE over {sse.lps_solved} candidate tuples "
          f"({sse.lps_feasible} feasible):")
    print(f"  marginals theta          : "
          f"{ {t: round(v, 4) for t, v in sse.thetas.items()} }")
    print(f"  best responses (per type): timid -> type "
          f"{sse.best_responses[0]}, bold -> type {sse.best_responses[1]}")
    print(f"  attacker utilities       : timid "
          f"{sse.attacker_utilities[0]:8.2f}, bold "
          f"{sse.attacker_utilities[1]:8.2f}")
    print(f"  auditor expected utility : {sse.auditor_utility:8.2f}\n")

    # Signaling stage for a type-1 alert at the equilibrium marginal.
    theta = sse.thetas[1]
    model = BayesianAttackerModel(
        auditor_payoff=AUDITOR[1],
        profiles=(TIMID[1], BOLD[1]),
        prior=(0.6, 0.4),
    )
    scheme = solve_bayesian_ossp(theta, model)
    print(f"Bayesian OSSP for a type-1 alert (theta = {theta:.4f}):")
    print(f"  deterred profiles  : {scheme.deterred_profiles} "
          "(0=timid, 1=bold)")
    print(f"  warning probability: {scheme.scheme.warning_probability:.4f}")
    print(f"  auditor utility    : {scheme.auditor_utility:8.2f}")
    no_signal = AUDITOR[1].auditor_utility(theta)
    print(f"  without signaling  : {no_signal:8.2f}")
    print(f"  value of warning   : {scheme.auditor_utility - no_signal:8.2f}")


if __name__ == "__main__":
    main()
