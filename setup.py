"""Compatibility shim for environments without the ``wheel`` package.

All metadata lives in ``pyproject.toml`` (PEP 621). Normal installs use
``pip install -e .``; offline environments lacking ``wheel`` (which pip
needs even for ``--no-use-pep517``) can fall back to the legacy editable
path this shim exists for::

    python setup.py develop
"""

from setuptools import setup

setup()
